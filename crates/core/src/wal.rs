//! Write-ahead log and snapshot store for the online serving layer.
//!
//! The serving index ([`crate::serving`]) keeps its authoritative state in
//! memory; this module makes that state survive restarts. Two files live in
//! the store directory:
//!
//! * **`wal.log`** — an append-only sequence of *frames*, one per mutation
//!   ([`WalRecord`]): `[payload_len: u32 LE][crc32: u32 LE][payload]`, the
//!   payload being the record in the shuffle codec's byte format
//!   ([`minispark::codec`]: fixed-width little-endian integers,
//!   length-prefixed sequences). The CRC makes torn tails detectable: a
//!   frame cut short by a crash fails the length or checksum test and the
//!   replay stops there, dropping the tail — every fully-written frame
//!   before it is recovered.
//! * **`snapshot.bin`** — a checksummed dump of the full live state, written
//!   via temp-file-then-rename so a crash mid-snapshot leaves the previous
//!   snapshot intact (rename is atomic on POSIX).
//!
//! The snapshot cycle is *snapshot-then-truncate*: the new snapshot is
//! written, synced and renamed into place **before** `wal.log` is truncated.
//! A crash between the two steps leaves WAL records that are already
//! reflected in the snapshot — harmless, because both record kinds are
//! idempotent to re-apply (an upsert replaces, a delete of a missing id is a
//! no-op). Replay therefore always applies the snapshot first and the full
//! WAL on top.
//!
//! Durability scope: `append` issues a complete `write_all` per record, so
//! state survives any process exit (panic, kill, restart). Surviving an OS
//! crash or power loss additionally needs [`WalStore::sync`] (fsync), which
//! callers can invoke at the cadence their durability budget allows;
//! snapshots are always fsynced before the rename.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use minispark::Codec;
use topk_rankings::{ItemId, Ranking, RankingId};

/// File name of the append-only log inside the store directory.
const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside the store directory.
const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temp name the snapshot is staged under before the atomic rename.
const SNAPSHOT_TMP: &str = "snapshot.bin.tmp";
/// Magic prefix identifying (and versioning) the snapshot format.
const SNAPSHOT_MAGIC: &[u8; 8] = b"TKSJSNP1";

/// Record tag bytes (the first payload byte of every WAL frame).
const TAG_UPSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// Errors raised by the WAL store.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file IO failed.
    Io(io::Error),
    /// A checksum-valid region decoded to garbage, or the snapshot file is
    /// malformed. Unlike a torn tail (which replay drops silently and
    /// reports via [`WalReplay::dropped_bytes`]), this is real corruption:
    /// the bytes were fully written and checksummed, yet do not parse.
    Corrupt {
        /// Which file is corrupt (`wal.log` or `snapshot.bin`).
        file: &'static str,
        /// What failed to parse.
        message: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { file, message } => write!(f, "{file} is corrupt: {message}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One durable mutation of the serving index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert-or-replace a batch of rankings (one client request).
    Upsert(Vec<Ranking>),
    /// Remove one ranking by id.
    Delete(RankingId),
}

impl WalRecord {
    /// Appends the codec encoding of the record to `out`.
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Upsert(rankings) => {
                TAG_UPSERT.encode(out);
                rankings.len().encode(out);
                for r in rankings {
                    r.id().encode(out);
                    // Mirrors `Vec<ItemId>` codec framing without cloning
                    // the item slice into an owned Vec first.
                    r.items().len().encode(out);
                    for &item in r.items() {
                        item.encode(out);
                    }
                }
            }
            WalRecord::Delete(id) => {
                TAG_DELETE.encode(out);
                id.encode(out);
            }
        }
    }

    /// Decodes one record from the front of `input`, advancing it.
    /// Returns `None` on malformed bytes (including invalid rankings —
    /// duplicate items or empty item lists never encode, so they never
    /// legitimately decode).
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            TAG_UPSERT => {
                let count = usize::decode(input)?;
                // Corrupt-length guard mirroring the Vec codec: each
                // ranking needs at least its id bytes.
                if count > input.len() {
                    return None;
                }
                // alloc(replay-time materialization — runs once per startup, not per request)
                let mut rankings = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = RankingId::decode(input)?;
                    let items = Vec::<ItemId>::decode(input)?;
                    rankings.push(Ranking::new(id, items).ok()?);
                }
                Some(WalRecord::Upsert(rankings))
            }
            TAG_DELETE => RankingId::decode(input).map(WalRecord::Delete),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial), table-driven, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // cast(i < 256 — the table-index loop bound)
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            j += 1;
        }
        // panics(i < 256 by the loop bound; the table has 256 entries)
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum of `bytes` (IEEE, the zlib/Ethernet polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        // panics(index is masked into 0..=255 by `& 0xFF`; the table has 256 entries)
        // cast(masked into 0..=255 by `& 0xFF` — fits usize)
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The state recovered by [`WalStore::open`]: snapshot first, then every
/// intact WAL record, in append order.
#[derive(Debug)]
pub struct WalReplay {
    /// The rankings in the snapshot (empty when no snapshot exists).
    pub snapshot: Vec<Ranking>,
    /// Intact WAL records to apply on top of the snapshot, oldest first.
    pub records: Vec<WalRecord>,
    /// Bytes dropped from the WAL tail because the final frame was torn
    /// (incomplete length/checksum/payload). Zero on a clean shutdown.
    pub dropped_bytes: usize,
}

/// Append-only WAL plus snapshot store rooted at one directory.
///
/// Not internally synchronized: the serving layer wraps the store in its
/// own mutex so the WAL ordering matches the in-memory mutation ordering.
#[derive(Debug)]
pub struct WalStore {
    dir: PathBuf,
    wal: File,
    records_since_snapshot: u64,
    wal_bytes: u64,
}

impl WalStore {
    /// Opens (creating if needed) the store at `dir` and replays its
    /// contents. A torn WAL tail is truncated away so subsequent appends
    /// continue from the last intact frame.
    pub fn open(dir: &Path) -> Result<(Self, WalReplay), WalError> {
        fs::create_dir_all(dir)?;
        let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE))?;

        let wal_path = dir.join(WAL_FILE);
        // alloc(recovery-time only: the WAL is read once at open)
        let mut existing = Vec::new();
        if wal_path.exists() {
            File::open(&wal_path)?.read_to_end(&mut existing)?;
        }
        let (records, intact_bytes) = replay_frames(&existing)?;
        let dropped_bytes = existing.len() - intact_bytes;

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        if dropped_bytes > 0 {
            // Cut the torn tail off so the next append does not extend a
            // half-written frame into permanently unreadable garbage.
            // cast(byte offsets widen losslessly into u64)
            wal.set_len(intact_bytes as u64)?;
        }
        let replay = WalReplay {
            snapshot,
            records,
            dropped_bytes,
        };
        let records_since_snapshot = replay.records.len() as u64;
        Ok((
            Self {
                dir: dir.to_path_buf(),
                wal,
                records_since_snapshot,
                // cast(byte offsets widen losslessly into u64)
                wal_bytes: intact_bytes as u64,
            },
            replay,
        ))
    }

    /// Appends one record as a complete checksummed frame. The frame is
    /// written in a single `write_all`, so a crash leaves either the whole
    /// frame or a torn tail that the next open truncates.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        // alloc(one frame buffer per mutation request — the WAL is the request path's durability boundary, not a per-record inner loop)
        let mut payload = Vec::new();
        record.encode(&mut payload);
        // alloc(same per-request frame buffer as above)
        let mut frame = Vec::with_capacity(payload.len() + 8);
        // cast(a frame holds one request batch — far below 4 GiB)
        (payload.len() as u32).encode(&mut frame);
        crc32(&payload).encode(&mut frame);
        frame.extend_from_slice(&payload);
        self.wal.write_all(&frame)?;
        self.records_since_snapshot += 1;
        self.wal_bytes += frame.len() as u64;
        Ok(())
    }

    /// Fsyncs the WAL file, upgrading process-crash durability to
    /// OS-crash/power-loss durability for everything appended so far.
    pub fn sync(&self) -> Result<(), WalError> {
        self.wal.sync_all()?;
        Ok(())
    }

    /// Writes a new snapshot of `rankings` and truncates the WAL.
    ///
    /// Crash-ordering: the snapshot is staged to a temp file, fsynced, and
    /// renamed over the previous snapshot *before* the WAL is truncated. A
    /// crash at any point leaves a recoverable store — at worst the WAL
    /// still holds records the snapshot already reflects, which replay
    /// re-applies idempotently.
    pub fn snapshot(&mut self, rankings: &[Ranking]) -> Result<(), WalError> {
        // alloc(snapshot serialization buffer — snapshots run on the compaction cadence, not per request)
        let mut payload = Vec::new();
        rankings.len().encode(&mut payload);
        for r in rankings {
            r.id().encode(&mut payload);
            r.items().len().encode(&mut payload);
            for &item in r.items() {
                item.encode(&mut payload);
            }
        }
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let mut out = File::create(&tmp)?;
            out.write_all(SNAPSHOT_MAGIC)?;
            // alloc(8-byte checksum scratch on the snapshot cadence)
            let mut crc_bytes = Vec::with_capacity(4);
            crc32(&payload).encode(&mut crc_bytes);
            out.write_all(&crc_bytes)?;
            out.write_all(&payload)?;
            out.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        self.wal.set_len(0)?;
        self.wal.sync_all()?;
        self.records_since_snapshot = 0;
        self.wal_bytes = 0;
        Ok(())
    }

    /// Number of records appended since the last snapshot (or open, if the
    /// WAL already held records) — the serving layer's snapshot trigger.
    pub fn records_since_snapshot(&self) -> u64 {
        self.records_since_snapshot
    }

    /// Current WAL size in bytes (intact frames only).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Reads and validates the snapshot file, returning its rankings (empty if
/// the file does not exist). A malformed snapshot is [`WalError::Corrupt`]:
/// snapshots are written atomically, so a bad one was never torn — its
/// bytes are wrong.
fn read_snapshot(path: &Path) -> Result<Vec<Ranking>, WalError> {
    let corrupt = |message: String| WalError::Corrupt {
        file: SNAPSHOT_FILE,
        message,
    };
    // alloc(recovery-time only: the snapshot is read once at open)
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        // alloc(Vec::new for the no-snapshot case does not allocate)
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        // alloc(corruption error path — not per-record)
        return Err(corrupt(format!(
            "{} bytes is shorter than the header",
            bytes.len()
        )));
    }
    let (magic, rest) = bytes.split_at(SNAPSHOT_MAGIC.len());
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic".to_string()));
    }
    let mut rest_ref = rest;
    let stored_crc =
        u32::decode(&mut rest_ref).ok_or_else(|| corrupt("checksum missing".to_string()))?;
    if crc32(rest_ref) != stored_crc {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    let payload = &mut rest_ref;
    let count = usize::decode(payload).ok_or_else(|| corrupt("count missing".to_string()))?;
    if count > payload.len() {
        // alloc(corruption error path — not per-record)
        return Err(corrupt(format!("impossible ranking count {count}")));
    }
    // alloc(startup-time snapshot materialization)
    let mut rankings = Vec::with_capacity(count);
    for i in 0..count {
        let id = RankingId::decode(payload)
            // alloc(corruption error path — not per-record)
            .ok_or_else(|| corrupt(format!("ranking {i}: id missing")))?;
        let items = Vec::<ItemId>::decode(payload)
            // alloc(corruption error path — not per-record)
            .ok_or_else(|| corrupt(format!("ranking {i}: items missing")))?;
        let ranking = Ranking::new(id, items)
            // alloc(corruption error path — not per-record)
            .map_err(|e| corrupt(format!("ranking {i} (id {id}): {e}")))?;
        rankings.push(ranking);
    }
    Ok(rankings)
}

/// Walks the WAL byte stream frame by frame. Returns the decoded records
/// and the byte length of the intact prefix. An incomplete or
/// checksum-failing final region is a torn tail: everything from its start
/// is dropped. A checksum-*valid* frame that fails to decode is corruption
/// and errors out.
fn replay_frames(bytes: &[u8]) -> Result<(Vec<WalRecord>, usize), WalError> {
    // alloc(startup-time WAL materialization)
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut cursor = bytes;
    loop {
        let mut peek = cursor;
        let Some(len) = u32::decode(&mut peek) else {
            break; // fewer than 4 bytes left: torn length prefix
        };
        let Some(stored_crc) = u32::decode(&mut peek) else {
            break; // torn checksum
        };
        // cast(the decoded u32 frame length widens losslessly)
        let len = len as usize;
        if peek.len() < len {
            break; // torn payload
        }
        let (payload, rest) = peek.split_at(len);
        if crc32(payload) != stored_crc {
            // A bad checksum means the frame was never completely written;
            // nothing after it is trustworthy either.
            break;
        }
        let mut payload_ref = payload;
        let record = WalRecord::decode(&mut payload_ref);
        let fully_consumed = payload_ref.is_empty();
        match record {
            Some(r) if fully_consumed => records.push(r),
            _ => {
                return Err(WalError::Corrupt {
                    file: WAL_FILE,
                    // alloc(corruption error path — not per-record)
                    message: format!(
                        "frame at byte {offset} passes its checksum but does not decode"
                    ),
                });
            }
        }
        offset += 8 + len;
        cursor = rest;
    }
    Ok((records, offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "topk-wal-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ranking(id: u64, first: u32) -> Ranking {
        Ranking::new(id, (first..first + 5).collect()).expect("distinct items")
    }

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_dir_opens_empty() -> TestResult {
        let dir = temp_dir("empty");
        let (store, replay) = WalStore::open(&dir)?;
        assert!(replay.snapshot.is_empty());
        assert!(replay.records.is_empty());
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(store.records_since_snapshot(), 0);
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn records_replay_in_append_order() -> TestResult {
        let dir = temp_dir("order");
        let recs = vec![
            WalRecord::Upsert(vec![ranking(1, 10), ranking(2, 20)]),
            WalRecord::Delete(1),
            WalRecord::Upsert(vec![ranking(3, 30)]),
        ];
        {
            let (mut store, _) = WalStore::open(&dir)?;
            for r in &recs {
                store.append(r)?;
            }
            assert_eq!(store.records_since_snapshot(), 3);
        }
        let (store, replay) = WalStore::open(&dir)?;
        assert_eq!(replay.records, recs);
        assert_eq!(replay.dropped_bytes, 0);
        assert!(replay.snapshot.is_empty());
        // Records already in the WAL still count toward the next snapshot.
        assert_eq!(store.records_since_snapshot(), 3);
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn snapshot_truncates_wal_and_replays_first() -> TestResult {
        let dir = temp_dir("snapshot");
        {
            let (mut store, _) = WalStore::open(&dir)?;
            store.append(&WalRecord::Upsert(vec![ranking(1, 10)]))?;
            store.snapshot(&[ranking(1, 10)])?;
            assert_eq!(store.records_since_snapshot(), 0);
            assert_eq!(store.wal_bytes(), 0);
            store.append(&WalRecord::Delete(1))?;
        }
        let (_, replay) = WalStore::open(&dir)?;
        assert_eq!(replay.snapshot, vec![ranking(1, 10)]);
        assert_eq!(replay.records, vec![WalRecord::Delete(1)]);
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() -> TestResult {
        let dir = temp_dir("torn");
        {
            let (mut store, _) = WalStore::open(&dir)?;
            store.append(&WalRecord::Upsert(vec![ranking(1, 10)]))?;
            store.append(&WalRecord::Delete(99))?;
        }
        // Simulate a crash mid-append: a frame whose payload is cut short.
        let wal_path = dir.join(WAL_FILE);
        let intact = fs::read(&wal_path)?;
        let mut torn = intact.clone();
        torn.extend_from_slice(&1000u32.to_le_bytes()); // length prefix
        torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // checksum
        torn.extend_from_slice(&[1, 2, 3]); // 3 of the promised 1000 bytes
        fs::write(&wal_path, &torn)?;

        let (mut store, replay) = WalStore::open(&dir)?;
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.dropped_bytes, 11);
        // The tail was truncated away, so appending works and a clean
        // reopen sees all three records.
        store.append(&WalRecord::Delete(1))?;
        drop(store);
        assert!(fs::read(&wal_path)?.len() > intact.len());
        let (_, replay) = WalStore::open(&dir)?;
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.dropped_bytes, 0);
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn bad_checksum_stops_replay_at_the_break() -> TestResult {
        let dir = temp_dir("badcrc");
        {
            let (mut store, _) = WalStore::open(&dir)?;
            store.append(&WalRecord::Delete(1))?;
            store.append(&WalRecord::Delete(2))?;
        }
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&wal_path)?;
        // Flip a payload byte of the FIRST frame: replay recovers nothing —
        // a broken frame makes everything after it untrustworthy.
        let last = bytes.len() - 1;
        bytes[last / 2] ^= 0xFF;
        let first_frame_start = 0;
        bytes[first_frame_start + 8] ^= 0xFF; // first payload byte
        fs::write(&wal_path, &bytes)?;
        let (_, replay) = WalStore::open(&dir)?;
        assert!(replay.records.is_empty());
        assert!(replay.dropped_bytes > 0);
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn checksummed_garbage_is_corruption_not_a_torn_tail() -> TestResult {
        let dir = temp_dir("garbage");
        fs::create_dir_all(&dir)?;
        // A frame with a *valid* checksum over an undecodable payload (tag 9
        // does not exist).
        let payload = vec![9u8, 0, 0, 0];
        let mut frame = Vec::new();
        (payload.len() as u32).encode(&mut frame);
        crc32(&payload).encode(&mut frame);
        frame.extend_from_slice(&payload);
        fs::write(dir.join(WAL_FILE), &frame)?;
        let err = WalStore::open(&dir).expect_err("valid checksum + bad payload must error");
        assert!(
            matches!(
                err,
                WalError::Corrupt {
                    file: "wal.log",
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("checksum"));
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn corrupt_snapshot_is_an_error() -> TestResult {
        let dir = temp_dir("badsnap");
        fs::create_dir_all(&dir)?;
        fs::write(dir.join(SNAPSHOT_FILE), b"TKSJSNP1then-garbage")?;
        let err = WalStore::open(&dir).expect_err("corrupt snapshot must not open");
        assert!(
            matches!(
                err,
                WalError::Corrupt {
                    file: "snapshot.bin",
                    ..
                }
            ),
            "{err}"
        );
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn crash_between_snapshot_and_truncate_replays_idempotently() -> TestResult {
        let dir = temp_dir("midcycle");
        {
            let (mut store, _) = WalStore::open(&dir)?;
            store.append(&WalRecord::Upsert(vec![ranking(7, 70)]))?;
        }
        // Simulate the crash window: snapshot renamed into place, WAL NOT
        // yet truncated. (Write the snapshot through a second store rooted
        // elsewhere, then copy it in next to the stale WAL.)
        let side = temp_dir("midcycle-side");
        {
            let (mut other, _) = WalStore::open(&side)?;
            other.snapshot(&[ranking(7, 70)])?;
        }
        fs::copy(side.join(SNAPSHOT_FILE), dir.join(SNAPSHOT_FILE))?;
        let (_, replay) = WalStore::open(&dir)?;
        // Both the snapshot AND the already-snapshotted record come back;
        // applying the upsert twice converges to the same state.
        assert_eq!(replay.snapshot, vec![ranking(7, 70)]);
        assert_eq!(
            replay.records,
            vec![WalRecord::Upsert(vec![ranking(7, 70)])]
        );
        fs::remove_dir_all(&dir)?;
        fs::remove_dir_all(&side)?;
        Ok(())
    }

    #[test]
    fn wal_error_messages_are_informative() {
        let io = WalError::from(io::Error::other("disk fell off"));
        assert!(io.to_string().contains("disk fell off"));
        let corrupt = WalError::Corrupt {
            file: "wal.log",
            message: "frame at byte 12".to_string(),
        };
        assert!(corrupt.to_string().contains("wal.log"));
        assert!(corrupt.to_string().contains("byte 12"));
    }
}
