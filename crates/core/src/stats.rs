//! Join-run statistics: the filter/verification counters that explain *why*
//! one algorithm beats another (candidates generated, position-filter and
//! triangle-inequality prunes, clusters formed, …).
//!
//! Counters are atomics so the engine's parallel tasks can update them
//! directly; a [`JoinStats`] is shared via `Arc` into the pipeline closures
//! and snapshotted at the end of a run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters updated during a join run.
#[derive(Debug, Default)]
pub struct JoinStats {
    /// Candidate pairs handed to verification (after candidate generation).
    pub candidates: AtomicU64,
    /// Candidates discarded by the position filter.
    pub position_pruned: AtomicU64,
    /// Candidates for which the full (early-exit) distance was computed.
    pub verified: AtomicU64,
    /// Verified candidates that qualified as results.
    pub result_pairs: AtomicU64,
    /// Expansion candidates discarded by the triangle lower bound.
    pub triangle_pruned: AtomicU64,
    /// Expansion candidates accepted by the triangle upper bound without a
    /// distance computation.
    pub triangle_accepted: AtomicU64,
    /// Clusters with at least two members formed by the clustering phase.
    pub clusters: AtomicU64,
    /// Singleton clusters.
    pub singletons: AtomicU64,
    /// Posting lists split by CL-P's repartitioning.
    pub posting_lists_split: AtomicU64,
    /// Sub-partition R-S joins executed by CL-P.
    pub rs_joins: AtomicU64,
    /// Sub-partitions (chunks) created by skew-aware group splitting —
    /// CL-P's δ and the opt-in [`minispark::SkewBudget`] path alike.
    pub skew_chunks: AtomicU64,
    /// Chunk self-join / chunk-pair R-S tasks that the executor's dynamic
    /// claim placed on a non-home slot (work stealing backfilling idle
    /// slots; see [`minispark::executor::steal_count`]).
    pub skew_steals: AtomicU64,
}

impl JoinStats {
    /// Increments a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        // relaxed(counter): an independent monotonic counter — no other
        // memory is published with it, and the executor's thread join orders
        // all increments before any snapshot.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        // relaxed(counter): same reasoning as `bump` — a pure counter
        // increment.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        // relaxed(read-after-join): torn-read tolerant — snapshots are taken
        // after the run's worker threads have joined, which already makes
        // every increment visible.
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        StatsSnapshot {
            candidates: load(&self.candidates),
            position_pruned: load(&self.position_pruned),
            verified: load(&self.verified),
            result_pairs: load(&self.result_pairs),
            triangle_pruned: load(&self.triangle_pruned),
            triangle_accepted: load(&self.triangle_accepted),
            clusters: load(&self.clusters),
            singletons: load(&self.singletons),
            posting_lists_split: load(&self.posting_lists_split),
            rs_joins: load(&self.rs_joins),
            skew_chunks: load(&self.skew_chunks),
            skew_steals: load(&self.skew_steals),
        }
    }
}

/// Immutable snapshot of [`JoinStats`], attached to every
/// [`crate::JoinOutcome`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Candidate pairs handed to verification.
    pub candidates: u64,
    /// Candidates discarded by the position filter.
    pub position_pruned: u64,
    /// Full distance computations performed.
    pub verified: u64,
    /// Pairs that qualified (before global dedup).
    pub result_pairs: u64,
    /// Triangle-lower-bound prunes in the expansion phase.
    pub triangle_pruned: u64,
    /// Triangle-upper-bound acceptances in the expansion phase.
    pub triangle_accepted: u64,
    /// Non-singleton clusters formed.
    pub clusters: u64,
    /// Singleton clusters.
    pub singletons: u64,
    /// Posting lists split by repartitioning.
    pub posting_lists_split: u64,
    /// Sub-partition R-S joins executed.
    pub rs_joins: u64,
    /// Sub-partitions created by skew-aware group splitting.
    pub skew_chunks: u64,
    /// Split-chunk tasks the executor's dynamic claim moved off their
    /// round-robin home slot (work stealing).
    pub skew_steals: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "candidates={} pos-pruned={} verified={} results={} tri-pruned={} tri-accepted={} clusters={} singletons={} splits={} rs-joins={} skew-chunks={} skew-steals={}",
            self.candidates,
            self.position_pruned,
            self.verified,
            self.result_pairs,
            self.triangle_pruned,
            self.triangle_accepted,
            self.clusters,
            self.singletons,
            self.posting_lists_split,
            self.rs_joins,
            self.skew_chunks,
            self.skew_steals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = JoinStats::default();
        JoinStats::bump(&stats.candidates);
        JoinStats::bump(&stats.candidates);
        JoinStats::add(&stats.verified, 5);
        let snap = stats.snapshot();
        assert_eq!(snap.candidates, 2);
        assert_eq!(snap.verified, 5);
        assert_eq!(snap.result_pairs, 0);
    }

    #[test]
    fn snapshot_is_displayable() {
        let stats = JoinStats::default();
        JoinStats::add(&stats.clusters, 3);
        let text = stats.snapshot().to_string();
        assert!(text.contains("clusters=3"));
    }

    #[test]
    fn concurrent_updates_are_counted() {
        let stats = std::sync::Arc::new(JoinStats::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let stats = std::sync::Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..1000 {
                        JoinStats::bump(&stats.candidates);
                    }
                });
            }
        });
        assert_eq!(stats.snapshot().candidates, 8000);
    }
}
