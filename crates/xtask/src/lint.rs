//! The project-native source analyzer behind `cargo run -p xtask -- lint`.
//!
//! The workspace policy (see DESIGN.md §"Static analysis & invariants"):
//!
//! * **no-unsafe** — no `unsafe` anywhere in the tree, tests included. The
//!   join kernels and the dataflow engine are 100% safe Rust and must stay so.
//! * **no-unwrap** / **no-panic** — no `.unwrap()` or `panic!(..)` in library
//!   code (any `src/` file) outside `#[cfg(test)]` regions. Use
//!   `.expect("<violated invariant>")` or propagate a proper error. Known
//!   stragglers live in the allowlist file, which may only ever shrink.
//! * **relaxed-comment** — every `Ordering::Relaxed` in non-test library code
//!   must carry a justifying comment mentioning "relaxed" on the same line or
//!   one of the three lines above it. Relaxed atomics are correct exactly
//!   when no other memory location is synchronized through them; the comment
//!   states why that holds at the site.
//! * **no-todo** / **no-dbg** — no `todo!()` or `dbg!()` left anywhere in
//!   committed code.
//! * **stale-allow** — an allowlist entry that no longer matches a violation
//!   must be deleted (the list shrinks, it never idles).
//!
//! The analyzer is deliberately lexical: it masks string literals and
//! comments, then pattern-matches the remaining code. That is robust against
//! false positives from doc examples and fixture strings without needing a
//! full parser (and thus without any external dependency).

use std::fmt;
use std::path::{Path, PathBuf};

/// One policy violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Violation {
    /// Rule identifier, e.g. `no-unwrap` (the allowlist keys on it).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-oriented explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// The lexical classes a source byte can belong to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Code,
    Comment,
    Literal,
}

/// Splits `src` into a code view and a comment view: each output has the same
/// length and line structure as `src`, with bytes of the other classes
/// blanked out. Handles line/block (nested) comments, string/char/byte
/// literals and raw strings.
pub(crate) fn mask_source(src: &str) -> (String, String) {
    let bytes = src.as_bytes();
    let mut class = vec![Class::Code; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    class[i] = Class::Comment;
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        class[i] = Class::Comment;
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"..."  r#"..."#  br##"..."## — find the hash count, then
                // scan for the closing quote + hashes.
                let start = i;
                let mut j = i;
                while bytes.get(j) == Some(&b'r') || bytes.get(j) == Some(&b'b') {
                    j += 1;
                }
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&b'"') => {
                            let mut h = 0;
                            while h < hashes && bytes.get(j + 1 + h) == Some(&b'#') {
                                h += 1;
                            }
                            if h == hashes {
                                j += 1 + hashes;
                                break;
                            }
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                for c in class.iter_mut().take(j.min(bytes.len())).skip(start) {
                    *c = Class::Literal;
                }
                i = j;
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                for c in class.iter_mut().take(i.min(bytes.len())).skip(start) {
                    *c = Class::Literal;
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: a literal closes within a few
                // bytes ('x', '\n', '\u{1F600}'); a lifetime never closes.
                if let Some(end) = char_literal_end(bytes, i) {
                    for c in class.iter_mut().take(end).skip(i) {
                        *c = Class::Literal;
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    let project = |keep: Class| -> String {
        src.char_indices()
            .map(|(pos, ch)| {
                if ch == '\n' || class[pos] == keep {
                    ch
                } else {
                    ' '
                }
            })
            .collect()
    };
    (project(Class::Code), project(Class::Comment))
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r" r# b" (byte string) br" br# — but not a plain identifier like `rank`.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    let mut saw_r = false;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        saw_r = true;
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    match bytes.get(j) {
        Some(&b'"') => saw_r || bytes[i] == b'b',
        _ => false,
    }
}

fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    // `i` points at the opening quote. Returns the index one past the
    // closing quote for a genuine char literal, `None` for a lifetime.
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
        // Escapes like \u{..} or \x41 extend further; scan to the quote.
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1);
    }
    // A literal holds exactly one char (possibly multi-byte UTF-8).
    while j < bytes.len() && j <= i + 5 {
        if bytes[j] == b'\'' {
            return (j > i + 1).then_some(j + 1);
        }
        if bytes[j] == b'\n' {
            return None;
        }
        j += 1;
    }
    None
}

/// Byte ranges of items gated behind `#[cfg(test)]` in the masked code view.
pub(crate) fn test_regions(code: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let bytes = code.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(ATTR).map(|p| p + from) {
        let mut j = pos + ATTR.len();
        // Skip whitespace and any further attributes on the same item.
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') && bytes.get(j + 1) == Some(&b'[') {
                let mut depth = 0;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // The gated item ends at the first `;` at brace depth 0 (use decl,
        // const) or at the matching `}` of its first brace block.
        let mut depth = 0usize;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((pos, end));
        from = end.max(pos + ATTR.len());
    }
    regions
}

pub(crate) fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(a, b)| pos >= a && pos < b)
}

pub(crate) fn line_of(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(n) => n + 1,
        Err(n) => n,
    }
}

/// Occurrences of `needle` in `hay` that sit on identifier boundaries.
pub(crate) fn find_tokens(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle).map(|p| p + from) {
        let before_ok = pos == 0 || {
            let b = bytes[pos - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = pos + needle.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// Whether `rel` is library code for the unwrap/panic/relaxed rules: any
/// `src/` file of a crate or the suite (binaries included — they ship).
/// `tests/`, `benches/` and `examples/` are exempt by policy.
pub(crate) fn is_library_path(rel: &str) -> bool {
    let exempt = ["tests/", "benches/", "examples/"];
    if exempt
        .iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
    {
        return false;
    }
    rel.starts_with("src/") || rel.contains("/src/")
}

/// Lints one file. `rel` must be the workspace-root-relative path with `/`
/// separators.
pub(crate) fn lint_file(rel: &str, src: &str) -> Vec<Violation> {
    let (code, comments) = mask_source(src);
    let regions = test_regions(&code);
    let mut line_starts = vec![0usize];
    line_starts.extend(src.match_indices('\n').map(|(p, _)| p + 1));
    let comment_lines: Vec<&str> = comments.split('\n').collect();
    let library = is_library_path(rel);

    let mut out = Vec::new();
    let mut push = |rule: &'static str, pos: usize, msg: String| {
        out.push(Violation {
            rule,
            path: rel.to_string(),
            line: line_of(&line_starts, pos),
            msg,
        });
    };

    for pos in find_tokens(&code, "unsafe") {
        push(
            "no-unsafe",
            pos,
            "`unsafe` is banned everywhere in this workspace".to_string(),
        );
    }
    for pos in find_tokens(&code, "todo") {
        if code[pos..].starts_with("todo") && code[pos + 4..].trim_start().starts_with('!') {
            push(
                "no-todo",
                pos,
                "`todo!()` left in committed code".to_string(),
            );
        }
    }
    for pos in find_tokens(&code, "dbg") {
        if code[pos + 3..].trim_start().starts_with('!') {
            push("no-dbg", pos, "`dbg!()` left in committed code".to_string());
        }
    }

    if library {
        for pos in code.match_indices(".unwrap").map(|(p, _)| p) {
            let rest = code[pos + ".unwrap".len()..].trim_start();
            if rest.starts_with("()") && !in_regions(&regions, pos) {
                push(
                    "no-unwrap",
                    pos,
                    "`.unwrap()` in library code — use `.expect(\"<invariant>\")` or return an error"
                        .to_string(),
                );
            }
        }
        for pos in find_tokens(&code, "panic") {
            if code[pos + "panic".len()..].trim_start().starts_with('!')
                && !in_regions(&regions, pos)
            {
                push(
                    "no-panic",
                    pos,
                    "`panic!` in library code — return an error or use an assert with a message"
                        .to_string(),
                );
            }
        }
        for (pos, _) in code.match_indices("Ordering::Relaxed") {
            if in_regions(&regions, pos) {
                continue;
            }
            let line = line_of(&line_starts, pos);
            let justified = (line.saturating_sub(4)..line)
                .filter_map(|n| comment_lines.get(n))
                .any(|c| c.to_ascii_lowercase().contains("relaxed"));
            if !justified {
                push(
                    "relaxed-comment",
                    pos,
                    "`Ordering::Relaxed` without a justifying comment (same line or ≤3 lines above, mentioning \"relaxed\")"
                        .to_string(),
                );
            }
        }
    }
    out
}

/// Recursively collects the workspace's `.rs` files, root-relative.
pub(crate) fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: &[&str] = &["target", ".git", "results", ".claude"];
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The allowlist: `rule path` lines in `crates/xtask/lint-allow.txt`.
fn load_allowlist(root: &Path) -> Vec<(String, String)> {
    let path = root.join("crates/xtask/lint-allow.txt");
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, path) = l.split_once(char::is_whitespace)?;
            Some((rule.to_string(), path.trim().to_string()))
        })
        .collect()
}

/// Lints the whole tree under `root`, applying the allowlist. Unused
/// allowlist entries are themselves violations (the list must only shrink).
pub(crate) fn lint_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let allow = load_allowlist(root);
    let mut used = vec![false; allow.len()];
    let mut violations = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        for v in lint_file(&rel, &src) {
            match allow
                .iter()
                .position(|(rule, p)| *rule == v.rule && *p == v.path)
            {
                Some(i) => used[i] = true,
                None => violations.push(v),
            }
        }
    }
    for (i, (rule, path)) in allow.iter().enumerate() {
        if !used[i] {
            violations.push(Violation {
                rule: "stale-allow",
                path: "crates/xtask/lint-allow.txt".to_string(),
                line: 1,
                msg: format!(
                    "allowlist entry `{rule} {path}` matches nothing — delete it (the list only shrinks)"
                ),
            });
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_strings_and_comments() {
        let src = "let a = \"x.unwrap()\"; // calls panic!\nlet b = r#\"dbg!(1)\"#;\n";
        let (code, comments) = mask_source(src);
        assert!(!code.contains("unwrap") && !code.contains("panic") && !code.contains("dbg"));
        assert!(comments.contains("panic"));
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (code, _) = mask_source("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(code.contains("'a str"));
        assert!(!code.contains('x') || !code.contains("'x'"));
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let v = lint_file("crates/demo/src/lib.rs", "fn f() { Some(1).unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_inside_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert!(lint_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_tests_dir_is_exempt_but_todo_is_not() {
        let src = "fn f() { Some(1).unwrap(); todo!() }\n";
        let v = lint_file("crates/demo/tests/t.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-todo");
    }

    #[test]
    fn unsafe_is_flagged_everywhere() {
        for rel in [
            "crates/demo/src/lib.rs",
            "crates/demo/tests/t.rs",
            "examples/e.rs",
        ] {
            let v = lint_file(rel, "fn f() { let p = 0; let _ = unsafe { p }; }\n");
            assert_eq!(v.len(), 1, "{rel}");
            assert_eq!(v[0].rule, "no-unsafe");
        }
    }

    #[test]
    fn unsafe_in_doc_comment_or_string_is_fine() {
        let src = "//! Never uses `unsafe` code.\nfn f() -> &'static str { \"unsafe\" }\n";
        assert!(lint_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_requires_a_comment() {
        let bad = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        let v = lint_file("crates/demo/src/lib.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-comment");

        let same_line =
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); /* relaxed: plain counter */ }\n";
        assert!(lint_file("crates/demo/src/lib.rs", same_line).is_empty());

        let above = "fn f(c: &AtomicU64) {\n // Relaxed: independent counter, no other data synchronized.\n c.load(Ordering::Relaxed);\n}\n";
        assert!(lint_file("crates/demo/src/lib.rs", above).is_empty());

        let too_far = "fn f(c: &AtomicU64) {\n // relaxed justification\n\n\n\n\n c.load(Ordering::Relaxed);\n}\n";
        assert_eq!(lint_file("crates/demo/src/lib.rs", too_far).len(), 1);
    }

    #[test]
    fn dbg_and_panic_rules() {
        let v = lint_file("src/lib.rs", "fn f() { dbg!(1); panic!(\"boom\"); }\n");
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"no-dbg"));
        assert!(rules.contains(&"no-panic"));
    }

    #[test]
    fn should_panic_attribute_is_not_a_panic_call() {
        let src = "#[should_panic(expected = \"x\")]\nfn t() {}\n";
        assert!(lint_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let src = "/* outer /* panic!() */ still comment .unwrap() */ fn f() {}\n";
        assert!(lint_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_use_declaration_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn f() { Some(1).unwrap(); }\n";
        let v = lint_file("crates/demo/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-unwrap");
    }
}
