//! The `lint` pass behind `cargo run -p xtask -- lint` (and `-- audit`).
//!
//! The workspace policy (see DESIGN.md §"Static analysis & invariants"):
//!
//! * **no-unsafe** — no `unsafe` anywhere in the tree, tests included. The
//!   join kernels and the dataflow engine are 100% safe Rust and must stay so.
//! * **no-unwrap** / **no-panic** — no `.unwrap()` or `panic!(..)` in library
//!   code (any `src/` file) outside `#[cfg(test)]` regions. Use
//!   `.expect("<violated invariant>")` or propagate a proper error. Known
//!   stragglers live in the allowlist file, which may only ever shrink.
//! * **relaxed-comment** — every `Ordering::Relaxed` in non-test library code
//!   must carry a justifying comment mentioning "relaxed" on the same line or
//!   one of the three lines above it. Relaxed atomics are correct exactly
//!   when no other memory location is synchronized through them; the comment
//!   states why that holds at the site. (The `atomics` pass tightens this
//!   into the structural `relaxed(<class>)` grammar.)
//! * **no-todo** / **no-dbg** — no `todo!()` or `dbg!()` left anywhere in
//!   committed code.
//! * **stale-allow** — an allowlist entry that no longer matches a violation
//!   must be deleted (the list shrinks, it never idles).
//!
//! Demo code — `examples/` and `src/bin/` binaries — gets a relaxed set:
//! `.unwrap()` and `panic!` are acceptable in a binary that aborts on bad
//! input, but `todo!`/`dbg!`/`unsafe` stay banned and `Ordering::Relaxed`
//! still needs its justifying comment. This keeps demo code from drifting
//! without forcing library-grade error plumbing onto walkthroughs.
//!
//! The analyzer is deliberately lexical: it rides the audit core's masked
//! source model (`crate::audit`), pattern-matching the code view with
//! comments and string literals blanked out. That is robust against false
//! positives from doc examples and fixture strings without needing a full
//! parser (and thus without any external dependency).

use std::path::Path;

use crate::audit::{find_tokens, PassOutcome, SourceFile, Violation};

/// Lints one parsed file.
pub(crate) fn lint_file(file: &SourceFile) -> Vec<Violation> {
    let code = &file.code;
    let comment_lines: Vec<&str> = file.comments.split('\n').collect();
    let demo = file.is_demo();
    let library = file.is_library() && !demo;

    let mut out = Vec::new();

    for pos in find_tokens(code, "unsafe") {
        out.push(file.violation(
            "no-unsafe",
            pos,
            "`unsafe` is banned everywhere in this workspace".to_string(),
        ));
    }
    for pos in find_tokens(code, "todo") {
        if code[pos..].starts_with("todo") && code[pos + 4..].trim_start().starts_with('!') {
            out.push(file.violation(
                "no-todo",
                pos,
                "`todo!()` left in committed code".to_string(),
            ));
        }
    }
    for pos in find_tokens(code, "dbg") {
        if code[pos + 3..].trim_start().starts_with('!') {
            out.push(file.violation("no-dbg", pos, "`dbg!()` left in committed code".to_string()));
        }
    }

    if library {
        for pos in code.match_indices(".unwrap").map(|(p, _)| p) {
            let rest = code[pos + ".unwrap".len()..].trim_start();
            if rest.starts_with("()") && !file.in_test(pos) {
                out.push(file.violation(
                    "no-unwrap",
                    pos,
                    "`.unwrap()` in library code — use `.expect(\"<invariant>\")` or return an error"
                        .to_string(),
                ));
            }
        }
        for pos in find_tokens(code, "panic") {
            if code[pos + "panic".len()..].trim_start().starts_with('!') && !file.in_test(pos) {
                out.push(file.violation(
                    "no-panic",
                    pos,
                    "`panic!` in library code — return an error or use an assert with a message"
                        .to_string(),
                ));
            }
        }
    }

    if library || demo {
        for (pos, _) in code.match_indices("Ordering::Relaxed") {
            if file.in_test(pos) {
                continue;
            }
            let line = file.line_of(pos);
            let justified = (line.saturating_sub(4)..line)
                .filter_map(|n| comment_lines.get(n))
                .any(|c| c.to_ascii_lowercase().contains("relaxed"));
            if !justified {
                out.push(file.violation(
                    "relaxed-comment",
                    pos,
                    "`Ordering::Relaxed` without a justifying comment (same line or ≤3 lines above, mentioning \"relaxed\")"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// The allowlist: `rule path` lines in `crates/xtask/lint-allow.txt`.
fn load_allowlist(root: &Path) -> Vec<(String, String)> {
    let path = root.join("crates/xtask/lint-allow.txt");
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, path) = l.split_once(char::is_whitespace)?;
            Some((rule.to_string(), path.trim().to_string()))
        })
        .collect()
}

/// Lints the whole parsed tree, applying the allowlist. Unused allowlist
/// entries are themselves violations (the list must only shrink).
pub(crate) fn run(root: &Path, sources: &[SourceFile]) -> PassOutcome {
    let allow = load_allowlist(root);
    let mut used = vec![false; allow.len()];
    let mut violations = Vec::new();
    for file in sources {
        for v in lint_file(file) {
            match allow
                .iter()
                .position(|(rule, p)| *rule == v.rule && *p == v.path)
            {
                Some(i) => used[i] = true,
                None => violations.push(v),
            }
        }
    }
    for (i, (rule, path)) in allow.iter().enumerate() {
        if !used[i] {
            violations.push(Violation {
                rule: "stale-allow",
                path: "crates/xtask/lint-allow.txt".to_string(),
                line: 1,
                col: 1,
                msg: format!(
                    "allowlist entry `{rule} {path}` matches nothing — delete it (the list only shrinks)"
                ),
            });
        }
    }
    PassOutcome {
        pass: "lint",
        sites: Vec::new(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Violation> {
        lint_file(&SourceFile::parse(rel, src))
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let v = lint("crates/demo/src/lib.rs", "fn f() { Some(1).unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_inside_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_tests_dir_is_exempt_but_todo_is_not() {
        let src = "fn f() { Some(1).unwrap(); todo!() }\n";
        let v = lint("crates/demo/tests/t.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-todo");
    }

    #[test]
    fn unsafe_is_flagged_everywhere() {
        for rel in [
            "crates/demo/src/lib.rs",
            "crates/demo/tests/t.rs",
            "examples/e.rs",
        ] {
            let v = lint(rel, "fn f() { let p = 0; let _ = unsafe { p }; }\n");
            assert_eq!(v.len(), 1, "{rel}");
            assert_eq!(v[0].rule, "no-unsafe");
        }
    }

    #[test]
    fn unsafe_in_doc_comment_or_string_is_fine() {
        let src = "//! Never uses `unsafe` code.\nfn f() -> &'static str { \"unsafe\" }\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_requires_a_comment() {
        let bad = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        let v = lint("crates/demo/src/lib.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-comment");

        let same_line =
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); /* relaxed: plain counter */ }\n";
        assert!(lint("crates/demo/src/lib.rs", same_line).is_empty());

        let above = "fn f(c: &AtomicU64) {\n // Relaxed: independent counter, no other data synchronized.\n c.load(Ordering::Relaxed);\n}\n";
        assert!(lint("crates/demo/src/lib.rs", above).is_empty());

        let too_far = "fn f(c: &AtomicU64) {\n // relaxed justification\n\n\n\n\n c.load(Ordering::Relaxed);\n}\n";
        assert_eq!(lint("crates/demo/src/lib.rs", too_far).len(), 1);
    }

    #[test]
    fn dbg_and_panic_rules() {
        let v = lint("src/lib.rs", "fn f() { dbg!(1); panic!(\"boom\"); }\n");
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"no-dbg"));
        assert!(rules.contains(&"no-panic"));
    }

    #[test]
    fn should_panic_attribute_is_not_a_panic_call() {
        let src = "#[should_panic(expected = \"x\")]\nfn t() {}\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let src = "/* outer /* panic!() */ still comment .unwrap() */ fn f() {}\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_use_declaration_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn f() { Some(1).unwrap(); }\n";
        let v = lint("crates/demo/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-unwrap");
    }

    #[test]
    fn demo_binaries_may_unwrap_but_not_todo() {
        for rel in [
            "crates/bench/src/bin/bench_kernels.rs",
            "examples/quickstart.rs",
        ] {
            let ok = "fn main() { Some(1).unwrap(); panic!(\"bad input\"); }\n";
            assert!(lint(rel, ok).is_empty(), "{rel}");

            let v = lint(rel, "fn main() { todo!() }\n");
            assert_eq!(v.len(), 1, "{rel}");
            assert_eq!(v[0].rule, "no-todo");

            let v = lint(rel, "fn main() { dbg!(1); }\n");
            assert_eq!(v.len(), 1, "{rel}");
            assert_eq!(v[0].rule, "no-dbg");
        }
    }

    #[test]
    fn demo_code_still_justifies_relaxed_atomics() {
        let bad = "fn main() { C.load(Ordering::Relaxed); }\n";
        let v = lint("examples/live_metrics.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-comment");

        let good = "fn main() { C.load(Ordering::Relaxed); /* relaxed: display counter */ }\n";
        assert!(lint("examples/live_metrics.rs", good).is_empty());
    }

    #[test]
    fn demo_paths_are_classified_correctly() {
        use crate::audit::is_demo_path;
        assert!(is_demo_path("examples/quickstart.rs"));
        assert!(is_demo_path("crates/bench/src/bin/experiments.rs"));
        assert!(!is_demo_path("crates/bench/src/lib.rs"));
        assert!(!is_demo_path("crates/rankings/src/distance.rs"));
        assert!(!is_demo_path("src/suite.rs"));
    }

    #[test]
    fn violations_carry_columns() {
        let v = lint("crates/demo/src/lib.rs", "fn f() { Some(1).unwrap(); }\n");
        assert_eq!(v[0].col, "fn f() { Some(1)".len() + 1);
    }
}
