//! The `panics` pass — `cargo run -p xtask -- panics` (and `-- audit`).
//!
//! The lint pass already bans `panic!`/`unwrap` in library code, but Rust
//! panics through operators too: `xs[i]` and `x / y` compile silently and
//! abort the whole join at runtime. On the verification hot path a panic is
//! not a diagnostic — it kills a worker mid-shuffle and the driver reports a
//! wrong (partial) join result as an I/O failure. This pass audits the
//! **hot-path files** (the explicit `HOT_PATHS` list below: distance kernels,
//! candidate generation, partitioning, spill/codec) for the two
//! panic-capable operator families the team actually writes:
//!
//! * **raw indexing** — `xs[i]`, `map[&k]`, `slice[a..b]`. Out of bounds or
//!   a missing key panics. Every site needs a `panics(<invariant>)` tag
//!   naming the invariant that bounds the index, or a rewrite onto
//!   `get`/`get_mut`/iterators/`split_at`/pattern matching.
//! * **division/remainder by a non-literal** — `x / n`, `x % n` where `n`
//!   is not a literal constant. Zero panics (integers) and literal divisors
//!   are trivially non-zero, so only computed divisors need a
//!   `panics(<invariant>)` tag or a guarded rewrite (`checked_div`,
//!   explicit `if n == 0` handling). Lines that mention `f32`/`f64` are
//!   skipped: float division never panics.
//!
//! Deliberately out of scope: overflow in `+`/`-`/`*` (wraps in release;
//! PR 1's `debug_assert!` layer and the `casts` pass own value-range
//! discipline) and indexing in cold paths (config parsing, report
//! formatting), where a panic is an acceptable assertion. The list of hot
//! paths is code, not config — extending it is a reviewed change.

use std::path::Path;

use crate::audit::{PassOutcome, SourceFile, Violation};

/// The files whose panic-capability this pass audits. Root-relative paths;
/// extend this list when a new file joins the per-pair / per-record path.
pub(crate) const HOT_PATHS: &[&str] = &[
    // rankings: per-pair distance/verification kernels.
    "crates/rankings/src/distance.rs",
    "crates/rankings/src/ordered.rs",
    "crates/rankings/src/bounds.rs",
    "crates/rankings/src/varlen.rs",
    "crates/rankings/src/jaccard.rs",
    "crates/rankings/src/verify.rs",
    // core: candidate generation and the driver pipeline's inner loops.
    "crates/core/src/kernels.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/index.rs",
    // core: the arrival joiner's query-then-insert loop runs per arrival.
    "crates/core/src/arrivals.rs",
    // core: the serving layer's per-request and per-record paths (every
    // upsert/query/delete and every WAL frame runs through these).
    "crates/core/src/serving.rs",
    "crates/core/src/wal.rs",
    // minispark: partitioning, skew splitting, spill and codec inner loops.
    "crates/minispark/src/shuffle.rs",
    "crates/minispark/src/skew.rs",
    "crates/minispark/src/spill.rs",
    "crates/minispark/src/codec.rs",
    "crates/minispark/src/executor.rs",
    // telemetry: the record path runs inside every task's inner loop.
    "crates/minispark/src/telemetry.rs",
];

/// One audited panic-capable site.
pub(crate) struct Site {
    pub path: String,
    pub line: usize,
    /// `"index"` or `"div"`.
    pub kind: &'static str,
    /// A short excerpt of the offending code.
    pub excerpt: String,
    /// The `panics(<invariant>)` tag found, if any.
    pub tag: Option<String>,
}

impl Site {
    pub(crate) fn describe(&self) -> String {
        format!(
            "{}:{}: {} `{}` [{}]",
            self.path,
            self.line,
            self.kind,
            self.excerpt,
            self.tag.as_deref().unwrap_or("-"),
        )
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A short single-line excerpt of the code around `pos`.
fn excerpt(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let start = code[..pos].rfind('\n').map_or(0, |p| p + 1);
    let end = code[pos..].find('\n').map_or(code.len(), |p| pos + p);
    let line = code[start..end].trim();
    let _ = bytes;
    if line.len() > 60 {
        let mut cut = 57;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &line[..cut])
    } else {
        line.to_string()
    }
}

/// Raw-index detection: a `[` directly preceded (no whitespace) by an
/// identifier character, `)` or `]` is an `Index` operation on an
/// expression. This shape excludes attribute brackets (`#[...]`), macro
/// brackets (`vec![...]` ends in `!`), array types (`[u32; 4]` follows
/// `:`/`(`/whitespace) and array literals.
fn is_raw_index(code: &str, pos: usize) -> bool {
    let bytes = code.as_bytes();
    if pos == 0 {
        return false;
    }
    let prev = bytes[pos - 1];
    is_ident_byte(prev) || prev == b')' || prev == b']'
}

/// Division/remainder with a non-literal right-hand side. `/` doubling as
/// comment syntax never appears in the masked code view, but `/=`, `%=`,
/// closure pipes and paths still need care. Returns the divisor excerpt
/// when the site needs auditing.
fn nonliteral_divisor(code: &str, pos: usize) -> Option<()> {
    let bytes = code.as_bytes();
    let op = bytes[pos];
    // `%` in a format string is masked already; `/` here can only be the
    // operator or part of `/=` (also a division).
    let mut j = pos + 1;
    if op == b'/' && matches!(bytes.get(j), Some(b'/') | Some(b'*')) {
        return None; // defensive: masked comments leave no `//`, but cheap
    }
    if bytes.get(j) == Some(&b'=') {
        j += 1; // `/=` and `%=`
    }
    while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
        j += 1;
    }
    let b = *bytes.get(j)?;
    if b.is_ascii_digit() {
        // Literal divisor: non-zero unless it *is* zero — `/ 0` would be a
        // compile error (unconditional panic lint), so treat as safe.
        return None;
    }
    if b == b'\n' {
        // Operator at end of line: divisor on the next line, rare enough to
        // just audit it.
        return Some(());
    }
    Some(())
}

/// True when the statement around `pos` mentions a float type or float-ish
/// method, in which case `/`/`%` cannot panic.
fn floatish_context(code: &str, pos: usize) -> bool {
    let start = code[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let end = code[pos..]
        .find([';', '{', '}'])
        .map_or(code.len(), |p| pos + p);
    let window = &code[start..end];
    [
        "f64", "f32", ".0e", "sqrt", "floor", "ceil", "powi", "powf", "1.0", "0.5", "2.0", "100.0",
    ]
    .iter()
    .any(|needle| window.contains(needle))
}

/// The identifier ending directly before `pos` (whitespace skipped), if any.
fn ident_ending_before(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    (start < end).then(|| &code[start..end])
}

/// The identifier starting directly after `pos` (whitespace skipped), if any.
fn ident_starting_after(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = pos;
    while start < bytes.len() && bytes[start].is_ascii_whitespace() {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    (start < end && !bytes[start].is_ascii_digit()).then(|| &code[start..end])
}

/// Whether either operand of the `/`/`%` at `pos` is an identifier the
/// same-file annotations bind to `f32`/`f64` (Rust never mixes operand
/// types, so one float operand makes the division float division).
fn float_operand(code: &str, pos: usize, floats: &[String]) -> bool {
    let mut after = pos + 1;
    if code.as_bytes().get(after) == Some(&b'=') {
        after += 1; // `/=` and `%=`
    }
    let lhs = ident_ending_before(code, pos);
    let rhs = ident_starting_after(code, after);
    [lhs, rhs]
        .into_iter()
        .flatten()
        .any(|name| floats.iter().any(|f| f == name))
}

/// Audits one parsed file (callers filter to `HOT_PATHS`).
pub(crate) fn audit_file(file: &SourceFile) -> (Vec<Site>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    let code = &file.code;
    let bytes = code.as_bytes();
    // Identifiers the same-file annotations bind to a float type: a division
    // with one of these as an operand is float division and cannot panic.
    let floats: Vec<String> = crate::casts::binding_types(code)
        .into_iter()
        .filter_map(|(name, ty)| {
            use crate::casts::NumTy;
            matches!(ty, Some(NumTy::F32 | NumTy::F64)).then_some(name)
        })
        .collect();

    let push_site =
        |pos: usize, kind: &'static str, sites: &mut Vec<Site>, violations: &mut Vec<Violation>| {
            let line = file.line_of(pos);
            let tag = file.tag("panics", line);
            if tag.is_none() {
                let (what, fix) = match kind {
                "index" => (
                    "raw index — out of bounds panics on the hot path",
                    "use `get`/iterators/`split_at`, or state the bounding invariant in a \
                     `panics(<invariant>)` tag (same line or ≤3 lines above)",
                ),
                _ => (
                    "division/remainder by a computed value — zero panics on the hot path",
                    "guard the divisor, use `checked_div`, or state the non-zero invariant in a \
                     `panics(<invariant>)` tag (same line or ≤3 lines above)",
                ),
            };
                violations.push(file.violation("panics-audit", pos, format!("{what}; {fix}")));
            }
            sites.push(Site {
                path: file.rel.clone(),
                line,
                kind,
                excerpt: excerpt(code, pos),
                tag,
            });
        };

    for (pos, &byte) in bytes.iter().enumerate() {
        if file.in_test(pos) {
            continue;
        }
        match byte {
            b'[' if is_raw_index(code, pos) => {
                push_site(pos, "index", &mut sites, &mut violations);
            }
            b'/' | b'%'
                // Skip the left operand's absence (unary context can't
                // produce `/` or `%`) and literal/float divisors.
                if nonliteral_divisor(code, pos).is_some()
                    && !floatish_context(code, pos)
                    && !float_operand(code, pos, &floats)
                => {
                    push_site(pos, "div", &mut sites, &mut violations);
                }
            _ => {}
        }
    }
    (sites, violations)
}

/// Audits the hot-path files of the parsed tree.
pub(crate) fn run(_root: &Path, sources: &[SourceFile]) -> PassOutcome {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for file in sources {
        if !HOT_PATHS.contains(&file.rel.as_str()) {
            continue;
        }
        let (s, v) = audit_file(file);
        sites.extend(s.iter().map(Site::describe));
        violations.extend(v);
    }
    PassOutcome {
        pass: "panics",
        sites,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/rankings/src/distance.rs";

    fn audit(src: &str) -> (Vec<Site>, Vec<Violation>) {
        audit_file(&SourceFile::parse(HOT, src))
    }

    #[test]
    fn raw_index_needs_a_tag() {
        let bad = "fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
        let (sites, violations) = audit(bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(sites[0].kind, "index");
        assert!(violations[0].msg.contains("raw index"));

        let good = "fn f(xs: &[u32], i: usize) -> u32 {\n    // panics(i < xs.len() — caller clamps to k)\n    xs[i]\n}\n";
        assert!(audit(good).1.is_empty());
    }

    #[test]
    fn attributes_macros_and_types_are_not_indexing() {
        let src = "#[derive(Clone)]\nfn f() -> Vec<u32> { let a: [u32; 2] = [1, 2]; vec![3, 4] }\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(sites.is_empty());
    }

    #[test]
    fn slice_of_call_result_is_indexing() {
        let src = "fn f(v: &Vec<Vec<u32>>) -> u32 { v.last().expect(\"non-empty\")[0] }\n";
        let (sites, _) = audit(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, "index");
    }

    #[test]
    fn computed_divisor_needs_a_tag_but_literal_does_not() {
        let bad = "fn f(total: u64, n: u64) -> u64 { total / n }\n";
        let (sites, violations) = audit(bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(sites[0].kind, "div");

        let literal = "fn f(total: u64) -> u64 { total / 2 + total % 8 }\n";
        assert!(audit(literal).1.is_empty());

        let tagged = "fn f(total: u64, n: u64) -> u64 {\n    // panics(n = num_partitions ≥ 1, validated in Config::new)\n    total / n\n}\n";
        assert!(audit(tagged).1.is_empty());
    }

    #[test]
    fn float_division_is_exempt() {
        let src = "fn f(a: f64, b: f64) -> f64 { a / b }\n";
        assert!(audit(src).1.is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f(xs: &[u32]) -> u32 { xs[0] } }\n";
        assert!(audit(src).1.is_empty());
    }

    #[test]
    fn only_hot_paths_are_audited_by_run() {
        let cold = SourceFile::parse(
            "crates/core/src/report.rs",
            "fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\n",
        );
        let hot = SourceFile::parse(HOT, "fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\n");
        let outcome = run(Path::new("."), &[cold, hot]);
        assert_eq!(outcome.violations.len(), 1);
        assert!(outcome.violations[0].path.contains("distance.rs"));
    }

    #[test]
    fn comments_and_strings_never_trip_the_rules() {
        let src = "// xs[i] and a / b in prose\nfn f() -> &'static str { \"xs[i] % n\" }\n";
        assert!(audit(src).1.is_empty());
    }
}
