//! The `hotalloc` pass — `cargo run -p xtask -- hotalloc` (and `-- audit`).
//!
//! PR 4 made the verify stage's steady state allocation-free (GroupScratch:
//! one arena reused across groups) and PR 5's skew splitting keeps partition
//! buffers preallocated. Those wins erode one `collect()` at a time: an
//! allocation that lands on the per-record path costs more than the
//! partitioning it optimizes (the motivation mirrors the silent per-record
//! overheads that distributed-join papers keep rediscovering). This pass
//! pins the property: every **allocation expression** on the hot-path file
//! set — the same files whose panic-capability the `panics` pass guards,
//! minus `bounds.rs` (pure arithmetic) and `telemetry.rs` (allocates only on
//! first-registration, a cold path by construction) — must carry an
//! `alloc(<why>)` tag stating why the allocation is not per-record (setup,
//! per-stage, spill boundary, error path), or be hoisted into scratch.
//!
//! Classified expression families (lexical, over the masked code view):
//!
//! * collection constructors — `Vec::new`/`with_capacity`, `String::new`/
//!   `with_capacity`/`from`, `Box::new`, `HashMap`/`HashSet`/`BTreeMap`/
//!   `BTreeSet`/`VecDeque` constructors;
//! * the `vec![..]` macro and `format!(..)`;
//! * `.to_vec()` and `.collect()`/`.collect::<..>()`;
//! * `.clone()` on a receiver the lexical type table binds to a collection
//!   type (the same annotation-scanning technique as `casts::binding_types`,
//!   applied to `Vec`/`String`/map/set/deque bindings).
//!
//! The ratchet baseline starts (and stays) at zero: a new untagged
//! allocation on a hot file fails CI, so the zero-alloc property can only
//! improve. Cold paths (config, reporting, tests) are exempt by the file
//! list, not by guesswork.

use std::collections::BTreeSet;
use std::path::Path;

use crate::audit::{find_tokens, PassOutcome, SourceFile, Violation};

/// The hot-path files whose allocations this pass audits: the `panics` list
/// minus `bounds.rs` and `telemetry.rs` (see module docs).
pub(crate) const HOT_PATHS: &[&str] = &[
    "crates/rankings/src/distance.rs",
    "crates/rankings/src/ordered.rs",
    "crates/rankings/src/verify.rs",
    "crates/rankings/src/varlen.rs",
    "crates/rankings/src/jaccard.rs",
    "crates/core/src/kernels.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/index.rs",
    "crates/core/src/arrivals.rs",
    "crates/core/src/serving.rs",
    "crates/core/src/wal.rs",
    "crates/minispark/src/shuffle.rs",
    "crates/minispark/src/skew.rs",
    "crates/minispark/src/spill.rs",
    "crates/minispark/src/codec.rs",
    "crates/minispark/src/executor.rs",
];

/// Collection constructors that allocate (token-boundary needles followed by
/// an argument list).
const CTORS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "String::new",
    "String::with_capacity",
    "String::from",
    "Box::new",
    "HashMap::new",
    "HashMap::with_capacity",
    "HashSet::new",
    "HashSet::with_capacity",
    "BTreeMap::new",
    "BTreeSet::new",
    "VecDeque::new",
    "VecDeque::with_capacity",
];

/// Type names whose `.clone()` duplicates a heap allocation.
const COLLECTION_TYPES: &[&str] = &[
    "Vec", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

/// One audited allocation site.
pub(crate) struct Site {
    pub path: String,
    pub line: usize,
    /// `"ctor"`, `"vec!"`, `"format!"`, `"to_vec"`, `"collect"`, `"clone"`.
    pub kind: &'static str,
    pub excerpt: String,
    /// The `alloc(<why>)` tag found, if any.
    pub tag: Option<String>,
}

impl Site {
    pub(crate) fn describe(&self) -> String {
        format!(
            "{}:{}: {} `{}` [{}]",
            self.path,
            self.line,
            self.kind,
            self.excerpt,
            self.tag.as_deref().unwrap_or("-"),
        )
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A short single-line excerpt of the code around `pos`.
fn excerpt(code: &str, pos: usize) -> String {
    let start = code[..pos].rfind('\n').map_or(0, |p| p + 1);
    let end = code[pos..].find('\n').map_or(code.len(), |p| pos + p);
    let line = code[start..end].trim();
    if line.len() > 60 {
        let mut cut = 57;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &line[..cut])
    } else {
        line.to_string()
    }
}

/// Identifiers the file's annotations bind to a collection type: scans
/// `name: Vec<..>`-shaped annotations (fn params, struct fields, typed
/// lets) the same way `casts::binding_types` scans numeric ones.
pub(crate) fn collection_bindings(code: &str) -> BTreeSet<String> {
    let bytes = code.as_bytes();
    let mut out = BTreeSet::new();
    for (pos, _) in code.match_indices(':') {
        // Skip `::` path separators (either side).
        if bytes.get(pos + 1) == Some(&b':') || (pos > 0 && bytes[pos - 1] == b':') {
            continue;
        }
        // Backward: the annotated identifier.
        let mut s = pos;
        while s > 0 && bytes[s - 1].is_ascii_whitespace() {
            s -= 1;
        }
        let end = s;
        while s > 0 && is_ident_byte(bytes[s - 1]) {
            s -= 1;
        }
        if s == end || bytes[s].is_ascii_digit() {
            continue;
        }
        let name = &code[s..end];
        // Forward: the type's leading segment (skip `&`, `mut`, whitespace).
        let mut t = pos + 1;
        loop {
            while t < bytes.len() && bytes[t].is_ascii_whitespace() {
                t += 1;
            }
            if bytes.get(t) == Some(&b'&') {
                t += 1;
                continue;
            }
            if bytes.get(t) == Some(&b'\'') {
                t += 1;
                while t < bytes.len() && is_ident_byte(bytes[t]) {
                    t += 1;
                }
                continue;
            }
            if code[t..].starts_with("mut ") {
                t += 4;
                continue;
            }
            break;
        }
        let ty_end = (t..bytes.len())
            .find(|&i| !is_ident_byte(bytes[i]))
            .unwrap_or(bytes.len());
        let ty = &code[t..ty_end];
        if COLLECTION_TYPES.contains(&ty) {
            out.insert(name.to_string());
        }
    }
    out
}

/// Audits one parsed file (callers filter to `HOT_PATHS`).
pub(crate) fn audit_file(file: &SourceFile) -> (Vec<Site>, Vec<Violation>) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let collections = collection_bindings(code);
    let mut found: Vec<(usize, &'static str)> = Vec::new();

    for ctor in CTORS {
        for pos in find_tokens(code, ctor) {
            if bytes.get(pos + ctor.len()) == Some(&b'(') {
                found.push((pos, "ctor"));
            }
        }
    }
    for pos in find_tokens(code, "vec") {
        if code[pos + 3..].starts_with('!') {
            found.push((pos, "vec!"));
        }
    }
    for pos in find_tokens(code, "format") {
        if code[pos + "format".len()..].starts_with('!') {
            found.push((pos, "format!"));
        }
    }
    for (pos, _) in code.match_indices(".to_vec()") {
        found.push((pos, "to_vec"));
    }
    for (pos, _) in code.match_indices(".collect") {
        let rest = &code[pos + ".collect".len()..];
        if rest.starts_with("()") || rest.starts_with("::<") {
            found.push((pos, "collect"));
        }
    }
    for (pos, _) in code.match_indices(".clone()") {
        // Receiver identifier directly before the dot.
        let mut s = pos;
        while s > 0 && is_ident_byte(bytes[s - 1]) {
            s -= 1;
        }
        if s < pos && collections.contains(&code[s..pos]) {
            found.push((pos, "clone"));
        }
    }
    found.sort_by_key(|&(pos, _)| pos);

    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for (pos, kind) in found {
        if file.in_test(pos) {
            continue;
        }
        let line = file.line_of(pos);
        let tag = file.tag("alloc", line);
        if tag.is_none() {
            violations.push(file.violation(
                "alloc-audit",
                pos,
                format!(
                    "allocation ({kind}) on a hot-path file — hoist it into setup/scratch or \
                     justify why it is not per-record with an `alloc(<why>)` tag (same line or \
                     ≤3 lines above)"
                ),
            ));
        }
        sites.push(Site {
            path: file.rel.clone(),
            line,
            kind,
            excerpt: excerpt(code, pos),
            tag,
        });
    }
    (sites, violations)
}

/// Audits the hot-path files of the parsed tree.
pub(crate) fn run(_root: &Path, sources: &[SourceFile]) -> PassOutcome {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for file in sources {
        if !HOT_PATHS.contains(&file.rel.as_str()) {
            continue;
        }
        let (s, v) = audit_file(file);
        sites.extend(s.iter().map(Site::describe));
        violations.extend(v);
    }
    PassOutcome {
        pass: "hotalloc",
        sites,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/kernels.rs";

    fn audit(src: &str) -> (Vec<Site>, Vec<Violation>) {
        audit_file(&SourceFile::parse(HOT, src))
    }

    #[test]
    fn untagged_constructor_is_flagged() {
        let (sites, violations) = audit("fn f() -> Vec<u32> { Vec::new() }\n");
        assert_eq!(violations.len(), 1);
        assert_eq!(sites[0].kind, "ctor");
        assert!(violations[0].msg.contains("alloc(<why>)"));
    }

    #[test]
    fn tagged_sites_are_inventoried_clean() {
        let src = "fn plan() -> Vec<u32> {\n    // alloc(per-stage plan buffer, not per-record)\n    Vec::with_capacity(8)\n}\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(
            sites[0].tag.as_deref(),
            Some("per-stage plan buffer, not per-record")
        );
    }

    #[test]
    fn macros_and_collect_are_classified() {
        let src = "fn f(xs: &[u32]) {\n    let a = vec![1];\n    let b = format!(\"{}\", 1);\n    let c: Vec<u32> = xs.iter().copied().collect();\n    let d = xs.to_vec();\n}\n";
        let (sites, violations) = audit(src);
        let kinds: Vec<_> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["vec!", "format!", "collect", "to_vec"]);
        assert_eq!(violations.len(), 4);
    }

    #[test]
    fn clone_on_a_collection_binding_is_an_allocation() {
        let src = "fn f(names: Vec<String>) -> Vec<String> { names.clone() }\n";
        let (sites, violations) = audit(src);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(sites[0].kind, "clone");
        // `.clone()` on an untyped (likely `Arc`/`Copy`-ish) receiver is not.
        let cheap = "fn f(handle: &Handle) -> Handle { handle.clone() }\n";
        assert!(audit(cheap).1.is_empty());
    }

    #[test]
    fn collection_bindings_scan_params_fields_and_lets() {
        let src = "struct S { buf: Vec<u8>, name: String }\nfn f(rows: &mut Vec<u32>, k: usize) { let acc: HashMap<u32, u32> = make(); }\n";
        let b = collection_bindings(src);
        assert!(b.contains("buf") && b.contains("name") && b.contains("rows") && b.contains("acc"));
        assert!(!b.contains("k"));
    }

    #[test]
    fn vec_the_identifier_is_not_the_macro() {
        let (sites, _) = audit("fn f(vec: &[u32]) -> usize { vec.len() }\n");
        assert!(sites.is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f() -> Vec<u32> { vec![1, 2] } }\n";
        assert!(audit(src).1.is_empty());
    }

    #[test]
    fn only_hot_paths_are_audited_by_run() {
        let cold = SourceFile::parse("crates/core/src/report.rs", "fn f() { let v = vec![1]; }\n");
        let hot = SourceFile::parse(HOT, "fn f() { let v = vec![1]; }\n");
        let outcome = run(Path::new("."), &[cold, hot]);
        assert_eq!(outcome.violations.len(), 1);
        assert!(outcome.violations[0].path.contains("kernels.rs"));
    }
}
