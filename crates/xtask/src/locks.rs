//! The `locks` pass — `cargo run -p xtask -- locks` (and `-- audit`).
//!
//! The engine's concurrency surface is small but load-bearing: parking_lot
//! mutexes around telemetry/trace/metrics registries, per-slot `std` mutexes
//! in the executor, a `RwLock` around the yield hook, and `std` mutexes in
//! the bench capture plane. The runtime sentinel in `sched::lock_order`
//! asserts ordering for the executor's own locks in debug builds; this pass
//! is its static counterpart for the whole workspace. It finds every guard
//! acquisition (`.lock()`, `.read()`, `.write()` with empty argument lists —
//! IO `read`/`write` calls always take a buffer), reconstructs the guard's
//! lexical scope, and enforces three rules on non-test library code:
//!
//! * **lock-wildcard** — a guard bound to `_` (`let _ = m.lock();`) is
//!   dropped immediately: the critical section is empty and the lock is a
//!   silent no-op. Bind it to a name (`_held`) or delete it.
//! * **lock-blocking** — a guard held across a blocking operation (channel
//!   `send`/`recv`, thread `join`/`spawn`, sleeps, blocking IO, or a call
//!   documented to take another registry's lock) turns a bounded critical
//!   section into an unbounded one and can deadlock against the lock's
//!   other users. Hoist the blocking work out of the critical section.
//! * **lock-nested** / **lock-cycle** — acquiring a second lock while one
//!   is held creates an edge in the per-crate lock-order graph (keyed by
//!   the receiver's field path, indexes normalized to `[_]`). Every nested
//!   acquisition must be justified; two crates-worth of edges that form a
//!   cycle are a deadlock waiting for the right interleaving and are
//!   rejected outright — `lock-cycle` has no suppression tag.
//!
//! Guard scopes are lexical approximations (DESIGN.md §14): a `let`-bound
//! guard lives to the end of its block (or an explicit `drop(name)`); a
//! temporary guard (`m.lock().push(x)`) lives to the end of its statement.
//! Adapter chains that still yield the guard (`.expect(..)`, `.unwrap()`,
//! `.unwrap_or_else(..)`) are recognized, so `std` and parking_lot idioms
//! parse the same way. Stdio locks (`stdout().lock()`) serialize output
//! only and are out of scope. Justifications use the `locks(<why>)` tag on
//! the flagged line or up to three lines above.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::audit::{block_end, stmt_end, stmt_start, PassOutcome, SourceFile, Violation};

/// Blocking operations a guard must not be held across, with the reason
/// used in the diagnostic. Lexical needles over the masked code view.
const BLOCKING: &[(&str, &str)] = &[
    (".send(", "a channel send"),
    (".recv(", "a channel receive"),
    ("recv_timeout(", "a channel receive"),
    (".join()", "a thread join"),
    ("spawn(", "a thread spawn"),
    ("sleep(", "a sleep"),
    (".write_all(", "a blocking IO write"),
    (".flush()", "a blocking IO flush"),
    (".read_to_string(", "a blocking IO read"),
    (".read_to_end(", "a blocking IO read"),
    ("connect(", "a network connect"),
    ("connect_timeout(", "a network connect"),
    (".accept()", "a network accept"),
    ("File::create(", "file IO"),
    ("File::open(", "file IO"),
    ("fs::write(", "file IO"),
    ("fs::rename(", "file IO"),
    ("remove_file(", "file IO"),
    (".wait(", "a condvar wait"),
    // Project calls documented to take an internal registry lock: grabbing
    // a full telemetry snapshot while holding another guard nests the
    // registry mutex under it (see `TelemetryRegistry::snapshot`).
    (
        ".telemetry().snapshot(",
        "a telemetry snapshot (takes the registry lock)",
    ),
    (
        "registry.snapshot(",
        "a telemetry snapshot (takes the registry lock)",
    ),
];

/// How the guard produced by an acquisition is held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Binding {
    /// `let name = m.lock();` — lives to end of block or `drop(name)`.
    Named(String),
    /// `m.lock().push(x)` — lives to the end of the statement.
    Temp,
    /// `let _ = m.lock();` — dropped before the semicolon.
    Wildcard,
}

/// One audited guard acquisition.
pub(crate) struct Site {
    pub path: String,
    pub line: usize,
    /// `"lock"`, `"read"` or `"write"`.
    pub kind: &'static str,
    /// Normalized receiver field path (`self.` stripped, indexes `[_]`).
    pub key: String,
    pub binding: Binding,
    /// Guard scope as byte offsets into the file's code view.
    pub scope: (usize, usize),
    /// Byte offset of the acquisition itself.
    pub pos: usize,
    /// The `locks(<why>)` tag found at the site, if any.
    pub tag: Option<String>,
}

impl Site {
    pub(crate) fn describe(&self) -> String {
        let binding = match &self.binding {
            Binding::Named(n) => format!("guard={n}"),
            Binding::Temp => "guard=temp".to_string(),
            Binding::Wildcard => "guard=_".to_string(),
        };
        format!(
            "{}:{}: {} `{}` {} [{}]",
            self.path,
            self.line,
            self.kind,
            self.key,
            binding,
            self.tag.as_deref().unwrap_or("-"),
        )
    }
}

/// One lock-order edge: while a guard of `outer` was held, `inner` was
/// acquired. `line` is the inner acquisition (for diagnostics).
pub(crate) struct Edge {
    pub crate_key: String,
    pub outer: String,
    pub inner: String,
    pub path: String,
    pub line: usize,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans backward from `dot` (the `.` of `.lock()`) over the receiver
/// chain: identifiers, `.`/`::` separators, balanced `[...]`/`(...)`
/// suffixes and interleaved whitespace. Returns the receiver's byte span.
fn receiver_span(code: &str, dot: usize) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    let end = dot;
    let mut i = dot;
    let mut expecting_segment = true;
    loop {
        // Skip whitespace between chain links (`foo\n    .lock()`).
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            break;
        }
        let b = bytes[i - 1];
        if b == b']' || b == b')' {
            // Balanced group suffix: `pending[idx]`, `stdout()`.
            let open = if b == b']' { b'[' } else { b'(' };
            let close = b;
            let mut depth = 0usize;
            while i > 0 {
                i -= 1;
                if bytes[i] == close {
                    depth += 1;
                } else if bytes[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            expecting_segment = true;
            continue;
        }
        if is_ident_byte(b) {
            while i > 0 && is_ident_byte(bytes[i - 1]) {
                i -= 1;
            }
            expecting_segment = false;
            // A separator may precede this segment.
            let mut j = i;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j > 0 && bytes[j - 1] == b'.' {
                i = j - 1;
                expecting_segment = true;
                continue;
            }
            if j > 1 && bytes[j - 1] == b':' && bytes[j - 2] == b':' {
                i = j - 2;
                expecting_segment = true;
                continue;
            }
            break;
        }
        break;
    }
    (!expecting_segment && i < end).then_some((i, end))
}

/// Normalizes a receiver span into the lock-order key: whitespace removed,
/// index expressions collapsed to `[_]`, leading `self.` stripped.
fn normalize_key(recv: &str) -> String {
    let mut out = String::new();
    let bytes = recv.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'[' {
                        depth += 1;
                    } else if bytes[i] == b']' {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                out.push_str("[_]");
                i += 1;
            }
            b if b.is_ascii_whitespace() => i += 1,
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out.strip_prefix("self.")
        .map_or(out.clone(), str::to_string)
}

/// Consumes the adapter chain after an acquisition that still yields the
/// guard: `.expect(..)`, `.unwrap()`, `.unwrap_or_else(..)`. Returns the
/// offset just past the last adapter.
fn consume_adapters(code: &str, mut pos: usize) -> usize {
    let bytes = code.as_bytes();
    loop {
        let mut j = pos;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let rest = &code[j..];
        let adapter = [".expect(", ".unwrap_or_else(", ".unwrap()"]
            .into_iter()
            .find(|a| rest.starts_with(a));
        let Some(adapter) = adapter else { return pos };
        if adapter == ".unwrap()" {
            pos = j + adapter.len();
            continue;
        }
        // Skip the balanced argument list from the adapter's `(`.
        let mut k = j + adapter.len() - 1;
        let mut depth = 0usize;
        while k < bytes.len() {
            match bytes[k] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        pos = k;
    }
}

/// The crate a root-relative path belongs to, for the per-crate order graph.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        _ => "suite".to_string(),
    }
}

/// The outcome of auditing one file.
pub(crate) struct FileAudit {
    pub sites: Vec<Site>,
    pub violations: Vec<Violation>,
    pub edges: Vec<Edge>,
}

/// Audits one parsed file (callers filter to library files).
pub(crate) fn audit_file(file: &SourceFile) -> FileAudit {
    let code = &file.code;
    let mut sites: Vec<Site> = Vec::new();

    for (needle, kind) in [
        (".lock()", "lock"),
        (".read()", "read"),
        (".write()", "write"),
    ] {
        for (dot, _) in code.match_indices(needle) {
            if file.in_test(dot) {
                continue;
            }
            let Some((rs, re)) = receiver_span(code, dot) else {
                continue;
            };
            let key = normalize_key(&code[rs..re]);
            // Stdio locks serialize output only; out of scope by policy.
            if key.ends_with("stdout()") || key.ends_with("stderr()") || key.ends_with("stdin()") {
                continue;
            }
            let after = consume_adapters(code, dot + needle.len());
            let start = stmt_start(code, rs);
            let stmt_head = code[start..rs].trim_start();
            // Does the guard land in a `let` binding directly (nothing but
            // adapters between the acquisition and the `;`)?
            let mut j = after;
            let bytes = code.as_bytes();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let ends_stmt = bytes.get(j) == Some(&b';');
            let binding = if let Some(rest) = stmt_head.strip_prefix("let ") {
                let rest = rest.trim_start();
                let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if ends_stmt && name == "_" {
                    Binding::Wildcard
                } else if ends_stmt && !name.is_empty() {
                    Binding::Named(name)
                } else {
                    Binding::Temp
                }
            } else {
                Binding::Temp
            };
            let scope = match &binding {
                Binding::Wildcard => (after, after),
                Binding::Temp => (after, stmt_end(code, after)),
                Binding::Named(name) => {
                    let from = j + 1; // just past the `let`'s `;`
                    let mut to = block_end(code, from);
                    // `drop(name)` releases the guard early.
                    let drop_needle = format!("drop({name})");
                    if let Some(p) = code[from..to].find(&drop_needle) {
                        to = from + p;
                    }
                    (from, to)
                }
            };
            let line = file.line_of(dot);
            sites.push(Site {
                path: file.rel.clone(),
                line,
                kind,
                key,
                binding,
                scope,
                pos: dot,
                tag: file.tag("locks", line),
            });
        }
    }
    sites.sort_by_key(|s| s.pos);

    let mut violations = Vec::new();
    let mut edges = Vec::new();
    let crate_key = crate_of(&file.rel);
    for i in 0..sites.len() {
        let site = &sites[i];
        match &site.binding {
            Binding::Wildcard => {
                if site.tag.is_none() {
                    violations.push(file.violation(
                        "lock-wildcard",
                        site.pos,
                        format!(
                            "guard of `{}` bound to `_` is dropped immediately — the critical \
                             section is empty; bind it to a name or delete the lock",
                            site.key
                        ),
                    ));
                }
                continue;
            }
            Binding::Temp | Binding::Named(_) => {}
        }
        let (from, to) = site.scope;
        let window = &code[from..to.max(from)];
        for (needle, what) in BLOCKING {
            if let Some(p) = window.find(needle) {
                if site.tag.is_none() && file.tag("locks", file.line_of(from + p)).is_none() {
                    violations.push(file.violation(
                        "lock-blocking",
                        from + p,
                        format!(
                            "guard of `{}` (acquired line {}) held across {what} — hoist the \
                             blocking work out of the critical section or justify with a \
                             `locks(<why>)` tag",
                            site.key, site.line
                        ),
                    ));
                }
            }
        }
        // Second acquisitions inside this guard's scope: order-graph edges.
        for inner in &sites {
            if inner.pos > from && inner.pos < to && inner.pos != site.pos {
                edges.push(Edge {
                    crate_key: crate_key.clone(),
                    outer: site.key.clone(),
                    inner: inner.key.clone(),
                    path: file.rel.clone(),
                    line: inner.line,
                });
                if site.tag.is_none() && inner.tag.is_none() {
                    violations.push(file.violation(
                        "lock-nested",
                        inner.pos,
                        format!(
                            "`{}` acquired while a guard of `{}` (line {}) is held — nested \
                             locks need a `locks(<why>)` tag stating the global order",
                            inner.key, site.key, site.line
                        ),
                    ));
                }
            }
        }
    }
    violations.sort_by_key(|v| (v.line, v.col));
    FileAudit {
        sites,
        violations,
        edges,
    }
}

/// Nodes of `edges` that sit on a cycle: a node is cyclic iff it can reach
/// itself through the order graph (self-loops included). Lock-order graphs
/// are tiny — a per-node DFS is exact and plenty fast, where plain Kahn
/// peeling would also keep acyclic nodes downstream of a cycle.
/// Deterministic via BTree ordering.
pub(crate) fn cycle_nodes(edges: &[(String, String)]) -> Vec<String> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut out: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges {
        nodes.insert(a);
        nodes.insert(b);
        out.entry(a).or_default().insert(b);
    }
    let mut cyclic = Vec::new();
    for &start in &nodes {
        let mut stack: Vec<&str> = out.get(start).into_iter().flatten().copied().collect();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut reaches_self = false;
        while let Some(n) = stack.pop() {
            if n == start {
                reaches_self = true;
                break;
            }
            if seen.insert(n) {
                stack.extend(out.get(n).into_iter().flatten().copied());
            }
        }
        if reaches_self {
            cyclic.push(start.to_string());
        }
    }
    cyclic
}

/// Audits the library files of the parsed tree and checks each crate's
/// lock-order graph for cycles.
pub(crate) fn run(_root: &Path, sources: &[SourceFile]) -> PassOutcome {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for file in sources {
        if !file.is_library() {
            continue;
        }
        let audit = audit_file(file);
        sites.extend(audit.sites.iter().map(Site::describe));
        violations.extend(audit.violations);
        edges.extend(audit.edges);
    }
    // Per-crate cycle check over the accumulated order graph.
    let mut by_crate: BTreeMap<&str, Vec<(String, String)>> = BTreeMap::new();
    for e in &edges {
        by_crate
            .entry(&e.crate_key)
            .or_default()
            .push((e.outer.clone(), e.inner.clone()));
    }
    for (crate_key, pairs) in &by_crate {
        let cyclic = cycle_nodes(pairs);
        if cyclic.is_empty() {
            continue;
        }
        // Anchor the diagnostic at the first edge into the cycle.
        let anchor = edges
            .iter()
            .find(|e| {
                e.crate_key == *crate_key && cyclic.contains(&e.outer) && cyclic.contains(&e.inner)
            })
            .expect("a cycle implies at least one edge between cyclic nodes");
        violations.push(Violation {
            rule: "lock-cycle",
            path: anchor.path.clone(),
            line: anchor.line,
            col: 1,
            msg: format!(
                "lock-order cycle in {} between {{{}}} — two sites acquire these locks in \
                 opposite orders; no tag can justify a deadlock, fix the ordering",
                crate_key,
                cyclic.join(", ")
            ),
        });
    }
    PassOutcome {
        pass: "locks",
        sites,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn audit(src: &str) -> FileAudit {
        audit_file(&SourceFile::parse(LIB, src))
    }

    #[test]
    fn named_parking_lot_guard_is_inventoried_clean() {
        let src = "fn f(&self) {\n    let mut events = self.inner.events.lock();\n    events.push(1);\n}\n";
        let a = audit(src);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].key, "inner.events");
        assert_eq!(a.sites[0].binding, Binding::Named("events".to_string()));
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn std_expect_chain_and_multiline_receivers_parse() {
        let src = "fn f(&self) {\n    self.reports\n        .lock()\n        .expect(\"poisoned\")\n        .push(1);\n}\n";
        let a = audit(src);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].key, "reports");
        assert_eq!(a.sites[0].binding, Binding::Temp);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn rwlock_poison_recovery_idiom_parses() {
        let src = "fn f() {\n    *HOOK.write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;\n}\n";
        let a = audit(src);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].kind, "write");
        assert_eq!(a.sites[0].key, "HOOK");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn wildcard_guard_is_flagged() {
        let src = "fn f(m: &Mutex<u32>) {\n    let _ = m.lock();\n}\n";
        let a = audit(src);
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        assert_eq!(a.violations[0].rule, "lock-wildcard");
        // Discarding a *result computed under* a temp guard is not a
        // wildcard guard.
        let used = "fn f(m: &Mutex<Vec<u32>>) {\n    let _ = m.lock().len();\n}\n";
        assert!(audit(used).violations.is_empty());
    }

    #[test]
    fn guard_across_blocking_op_is_flagged_and_taggable() {
        let src = "fn f(&self, tx: &Sender<u32>) {\n    let g = self.state.lock();\n    tx.send(*g);\n}\n";
        let a = audit(src);
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        assert_eq!(a.violations[0].rule, "lock-blocking");
        assert!(a.violations[0].msg.contains("channel send"));

        let tagged = "fn f(&self, tx: &Sender<u32>) {\n    // locks(send is non-blocking: unbounded channel)\n    let g = self.state.lock();\n    tx.send(*g);\n}\n";
        assert!(audit(tagged).violations.is_empty());
    }

    #[test]
    fn temp_guard_scope_ends_at_the_statement() {
        let src = "fn f(&self, s: &mut TcpStream) {\n    self.state.lock().push(1);\n    s.write_all(b\"x\");\n}\n";
        assert!(audit(src).violations.is_empty());
    }

    #[test]
    fn dropping_a_named_guard_ends_its_scope() {
        let src = "fn f(&self, s: &mut TcpStream) {\n    let g = self.state.lock();\n    drop(g);\n    s.write_all(b\"x\");\n}\n";
        assert!(audit(src).violations.is_empty());
        let held = "fn f(&self, s: &mut TcpStream) {\n    let g = self.state.lock();\n    s.write_all(b\"x\");\n}\n";
        assert_eq!(audit(held).violations.len(), 1);
    }

    #[test]
    fn nested_acquisition_records_an_edge_and_needs_a_tag() {
        let src =
            "fn f(&self) {\n    let a = self.first.lock();\n    let b = self.second.lock();\n}\n";
        let a = audit(src);
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].outer, "first");
        assert_eq!(a.edges[0].inner, "second");
        assert!(
            a.violations.iter().any(|v| v.rule == "lock-nested"),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn indexes_normalize_into_one_key() {
        let src = "fn f(pending: &[Mutex<u32>], idx: usize) {\n    pending[idx]\n        .lock()\n        .checked_add(1);\n}\n";
        let a = audit(src);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].key, "pending[_]");
    }

    #[test]
    fn stdio_locks_are_out_of_scope() {
        let src = "fn f() {\n    let mut out = std::io::stdout().lock();\n}\n";
        let a = audit(src);
        assert!(a.sites.is_empty());
        assert!(a.violations.is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod t {\n    fn f(m: &Mutex<u32>) { let _ = m.lock(); }\n}\n";
        assert!(audit(src).violations.is_empty());
    }

    #[test]
    fn snapshot_under_capture_lock_regression() {
        // The exact pre-fix shape of `Capture::finish_run`: the snapshots
        // guard held while `snapshot()` takes the telemetry registry lock.
        let old = "fn finish_run(&self, cluster: &Cluster) {\n    self.snapshots\n        .lock()\n        .expect(\"capture snapshot lock poisoned\")\n        .push(cluster.telemetry().snapshot().to_json());\n}\n";
        let a = audit(old);
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        assert_eq!(a.violations[0].rule, "lock-blocking");
        assert!(a.violations[0].msg.contains("telemetry snapshot"));

        // The fixed shape: snapshot first, lock after.
        let fixed = "fn finish_run(&self, cluster: &Cluster) {\n    let doc = cluster.telemetry().snapshot().to_json();\n    self.snapshots\n        .lock()\n        .expect(\"capture snapshot lock poisoned\")\n        .push(doc);\n}\n";
        assert!(audit(fixed).violations.is_empty());
    }

    #[test]
    fn cycle_detector_on_hand_built_orderings() {
        let e = |a: &str, b: &str| (a.to_string(), b.to_string());
        // Consistent order: no cycle.
        assert!(cycle_nodes(&[e("a", "b"), e("b", "c"), e("a", "c")]).is_empty());
        // Opposite orders: both nodes are cyclic.
        assert_eq!(cycle_nodes(&[e("a", "b"), e("b", "a")]), vec!["a", "b"]);
        // Self-loop (re-entrant acquisition) is a cycle.
        assert_eq!(cycle_nodes(&[e("a", "a")]), vec!["a"]);
        // A cycle does not drag in acyclic neighbors.
        assert_eq!(
            cycle_nodes(&[e("x", "a"), e("a", "b"), e("b", "a"), e("b", "y")]),
            vec!["a", "b"]
        );
        // Longer cycle.
        assert_eq!(
            cycle_nodes(&[e("a", "b"), e("b", "c"), e("c", "a")]),
            vec!["a", "b", "c"]
        );
        assert!(cycle_nodes(&[]).is_empty());
    }

    #[test]
    fn run_reports_cycles_across_functions() {
        let src = "fn f(&self) {\n    // locks(order: first then second)\n    let a = self.first.lock();\n    let b = self.second.lock();\n}\nfn g(&self) {\n    // locks(order: second then first)\n    let b = self.second.lock();\n    let a = self.first.lock();\n}\n";
        let file = SourceFile::parse(LIB, src);
        let outcome = run(Path::new("."), &[file]);
        let cycles: Vec<_> = outcome
            .violations
            .iter()
            .filter(|v| v.rule == "lock-cycle")
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", outcome.violations);
        assert!(cycles[0].msg.contains("first"));
        assert!(cycles[0].msg.contains("second"));
    }

    #[test]
    fn run_skips_non_library_files() {
        let test_file = SourceFile::parse(
            "crates/demo/tests/t.rs",
            "fn f(m: &Mutex<u32>) { let _ = m.lock(); }\n",
        );
        let outcome = run(Path::new("."), &[test_file]);
        assert!(outcome.sites.is_empty());
        assert!(outcome.violations.is_empty());
    }
}
