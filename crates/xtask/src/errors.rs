//! The `errors` pass — `cargo run -p xtask -- errors` (and `-- audit`).
//!
//! A distributed join that loses an IO error reports a *wrong answer*, not
//! a failure: a spill file that silently fails to write, a scrape socket
//! that dies mid-response, a join handle whose panic is discarded — each
//! turns into missing pairs or stale metrics downstream. Rust makes
//! swallowing a `Result` easy in exactly three shapes, and this pass audits
//! all of them in non-test library code:
//!
//! * **errors-discard** — `let _ = f(..);` where `f` is known to return a
//!   `Result`: same-file `fn .. -> Result<..>` signatures plus a table of
//!   std calls (`write!`/`writeln!`, `join()`, filesystem and socket ops).
//!   Discarding is sometimes right (best-effort cleanup in `Drop`), but it
//!   must say why.
//! * **errors-swallow** — a statement ending in `.ok();`: the error is
//!   converted to an `Option` and immediately thrown away without even a
//!   `let _ =` to signal intent. (`let x = f().ok();` binds the option and
//!   is fine.)
//! * **errors-default** — `.unwrap_or_default()` on a statement that
//!   performs IO: an unreadable file and an empty file become the same
//!   value, which is how corrupt spill runs turn into empty partitions.
//!
//! Every flagged site needs an `errors(<why>)` tag naming the reason the
//! error is genuinely ignorable (same line or ≤3 lines above), or a rewrite
//! that propagates/logs the error. The ratchet baseline is zero.

use std::collections::BTreeSet;
use std::path::Path;

use crate::audit::{find_tokens, stmt_end, stmt_start, PassOutcome, SourceFile, Violation};

/// Std calls that return `Result` (needles over the masked code view).
const STD_RESULT_CALLS: &[&str] = &[
    "write!",
    "writeln!",
    ".join()",
    "remove_file(",
    "remove_dir",
    "create_dir",
    "fs::write(",
    "fs::rename(",
    "fs::copy(",
    "File::create(",
    "File::open(",
    "set_read_timeout(",
    "set_write_timeout(",
    "connect(",
    "connect_timeout(",
    ".flush()",
    ".write_all(",
    ".read_to_string(",
    ".read_to_end(",
    ".send(",
    ".recv()",
    ".spawn(",
    ".set_len(",
    ".sync_all()",
];

/// Needles that mark a statement as performing IO (for `errors-default`).
const IO_NEEDLES: &[&str] = &[
    "fs::",
    "File::",
    ".read_to_string(",
    ".read_to_end(",
    "env::var",
    ".read(",
    ".recv()",
];

/// One audited swallowed-error site.
pub(crate) struct Site {
    pub path: String,
    pub line: usize,
    /// `"discard"`, `"swallow"` or `"default"`.
    pub kind: &'static str,
    pub excerpt: String,
    /// The `errors(<why>)` tag found, if any.
    pub tag: Option<String>,
}

impl Site {
    pub(crate) fn describe(&self) -> String {
        format!(
            "{}:{}: {} `{}` [{}]",
            self.path,
            self.line,
            self.kind,
            self.excerpt,
            self.tag.as_deref().unwrap_or("-"),
        )
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A short single-line excerpt of the code around `pos`.
fn excerpt(code: &str, pos: usize) -> String {
    let start = code[..pos].rfind('\n').map_or(0, |p| p + 1);
    let end = code[pos..].find('\n').map_or(code.len(), |p| pos + p);
    let line = code[start..end].trim();
    if line.len() > 60 {
        let mut cut = 57;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &line[..cut])
    } else {
        line.to_string()
    }
}

/// Names of same-file functions whose return type mentions `Result`.
pub(crate) fn result_fns(code: &str) -> BTreeSet<String> {
    let bytes = code.as_bytes();
    let mut out = BTreeSet::new();
    for pos in find_tokens(code, "fn") {
        let mut i = pos + 2;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if start == i {
            continue;
        }
        let name = &code[start..i];
        // The signature runs to the body `{` (or `;` for a decl); a return
        // type mentioning `Result` marks the fn.
        let mut depth = 0usize;
        let mut arrow = None;
        let mut j = i;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' | b';' if depth == 0 => break,
                b'-' if depth == 0 && bytes.get(j + 1) == Some(&b'>') => arrow = Some(j + 2),
                _ => {}
            }
            j += 1;
        }
        if let Some(a) = arrow {
            if code[a..j].contains("Result") {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// Whether `expr` contains a call to any known-Result function.
fn calls_result(expr: &str, fns: &BTreeSet<String>) -> bool {
    if STD_RESULT_CALLS.iter().any(|n| expr.contains(n)) {
        return true;
    }
    fns.iter().any(|name| {
        find_tokens(expr, name)
            .iter()
            .any(|&p| expr[p + name.len()..].trim_start().starts_with('('))
    })
}

/// Audits one parsed file (callers filter to library files).
pub(crate) fn audit_file(file: &SourceFile) -> (Vec<Site>, Vec<Violation>) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let fns = result_fns(code);
    let mut found: Vec<(usize, &'static str, String)> = Vec::new();

    // `let _ = <call returning Result>;`
    for pos in find_tokens(code, "let") {
        let rest = &code[pos + 3..];
        let trimmed = rest.trim_start();
        if !trimmed.starts_with('_') {
            continue;
        }
        let after_underscore = &trimmed[1..];
        if after_underscore.bytes().next().is_some_and(is_ident_byte) {
            continue; // `let _x = ..` holds the value
        }
        if !after_underscore.trim_start().starts_with('=') {
            continue;
        }
        let eq = pos + 3 + (rest.len() - after_underscore.trim_start().len()) + 1;
        let end = stmt_end(code, eq);
        let expr = &code[eq..end];
        if calls_result(expr, &fns) {
            found.push((
                pos,
                "discard",
                "discarded `Result` — handle it, log it, or say why it is ignorable".to_string(),
            ));
        }
    }

    // Statement-position `.ok();` — error silently converted and dropped.
    for (pos, _) in code.match_indices(".ok()") {
        let after = code[pos + ".ok()".len()..].trim_start();
        if !after.starts_with(';') {
            continue;
        }
        let start = stmt_start(code, pos);
        let stmt = code[start..pos].trim_start();
        if stmt.starts_with("let ") || stmt.starts_with("return") || stmt.contains('=') {
            continue; // the Option is used
        }
        found.push((
            pos,
            "swallow",
            "statement ends in `.ok();` — the error vanishes without a trace".to_string(),
        ));
    }

    // `.unwrap_or_default()` on an IO statement.
    for (pos, _) in code.match_indices(".unwrap_or_default()") {
        let start = stmt_start(code, pos);
        let stmt = &code[start..pos];
        if IO_NEEDLES.iter().any(|n| stmt.contains(n)) {
            found.push((
                pos,
                "default",
                "IO failure collapsed into the default value — an unreadable input and an \
                 empty one become indistinguishable"
                    .to_string(),
            ));
        }
    }
    found.sort_by_key(|&(pos, _, _)| pos);

    let mut sites = Vec::new();
    let mut violations = Vec::new();
    let _ = bytes;
    for (pos, kind, what) in found {
        if file.in_test(pos) {
            continue;
        }
        let line = file.line_of(pos);
        let tag = file.tag("errors", line);
        if tag.is_none() {
            violations.push(file.violation(
                match kind {
                    "discard" => "errors-discard",
                    "swallow" => "errors-swallow",
                    _ => "errors-default",
                },
                pos,
                format!(
                    "{what}; justify with an `errors(<why>)` tag (same line or ≤3 lines above)"
                ),
            ));
        }
        sites.push(Site {
            path: file.rel.clone(),
            line,
            kind,
            excerpt: excerpt(code, pos),
            tag,
        });
    }
    (sites, violations)
}

/// Audits the library files of the parsed tree.
pub(crate) fn run(_root: &Path, sources: &[SourceFile]) -> PassOutcome {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for file in sources {
        if !file.is_library() {
            continue;
        }
        let (s, v) = audit_file(file);
        sites.extend(s.iter().map(Site::describe));
        violations.extend(v);
    }
    PassOutcome {
        pass: "errors",
        sites,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn audit(src: &str) -> (Vec<Site>, Vec<Violation>) {
        audit_file(&SourceFile::parse(LIB, src))
    }

    #[test]
    fn discarded_std_result_is_flagged_and_taggable() {
        let bad = "impl Drop for Spill {\n    fn drop(&mut self) {\n        let _ = std::fs::remove_file(&self.path);\n    }\n}\n";
        let (sites, violations) = audit(bad);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "errors-discard");
        assert_eq!(sites[0].kind, "discard");

        let tagged = "impl Drop for Spill {\n    fn drop(&mut self) {\n        // errors(best-effort temp cleanup in Drop — nowhere to report)\n        let _ = std::fs::remove_file(&self.path);\n    }\n}\n";
        assert!(audit(tagged).1.is_empty());
    }

    #[test]
    fn discarded_same_file_result_fn_is_flagged() {
        let src = "fn serve(s: TcpStream) -> std::io::Result<()> { Ok(()) }\nfn accept_loop(s: TcpStream) {\n    let _ = serve(s);\n}\n";
        let (_, violations) = audit(src);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "errors-discard");
    }

    #[test]
    fn discarding_a_non_result_value_is_fine() {
        let src = "fn f(family: u32, index: u32) {\n    let _ = (family, index);\n    let _ = make_widget();\n}\nfn make_widget() -> u32 { 1 }\n";
        assert!(audit(src).1.is_empty());
    }

    #[test]
    fn named_underscore_bindings_hold_the_value() {
        let src = "fn f(m: &M) {\n    let _guard = m.acquire();\n    let _ = std::fs::remove_file(\"x\");\n}\n";
        let (_, violations) = audit(src);
        assert_eq!(violations.len(), 1, "only the true `_` discard flags");
    }

    #[test]
    fn statement_ok_is_swallowing_but_bound_ok_is_not() {
        let bad = "fn f(s: &mut TcpStream) {\n    s.flush().ok();\n}\n";
        let (sites, violations) = audit(bad);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "errors-swallow");
        assert_eq!(sites[0].kind, "swallow");

        let bound = "fn f() {\n    let handle = std::thread::Builder::new()\n        .spawn(move || {\n            let x = 1;\n            work(x);\n        })\n        .ok();\n    if handle.is_none() {}\n}\n";
        assert!(
            audit(bound).1.is_empty(),
            "a bound `.ok()` is a used Option"
        );
    }

    #[test]
    fn unwrap_or_default_on_io_is_flagged() {
        let bad =
            "fn f(p: &Path) -> String {\n    std::fs::read_to_string(p).unwrap_or_default()\n}\n";
        let (_, violations) = audit(bad);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "errors-default");

        let fine = "fn f(xs: &[Task]) -> String {\n    xs.first().map(|t| t.stage.to_string()).unwrap_or_default()\n}\n";
        assert!(audit(fine).1.is_empty(), "non-IO defaults are fine");
    }

    #[test]
    fn result_fn_table_is_lexical_but_accurate() {
        let src = "fn a() -> std::io::Result<()> { Ok(()) }\nfn b(x: u32) -> u32 { x }\npub(crate) fn c() -> Result<Vec<u32>, String> { Ok(Vec::new()) }\n";
        let fns = result_fns(src);
        assert!(fns.contains("a") && fns.contains("c"));
        assert!(!fns.contains("b"));
    }

    #[test]
    fn test_regions_and_non_library_files_are_exempt() {
        let src = "#[cfg(test)]\nmod t {\n    fn f() { let _ = std::fs::remove_file(\"x\"); }\n}\n";
        assert!(audit(src).1.is_empty());
        let bench = SourceFile::parse(
            "crates/demo/benches/b.rs",
            "fn f() { let _ = std::fs::remove_file(\"x\"); }\n",
        );
        let outcome = run(Path::new("."), &[bench]);
        assert!(outcome.violations.is_empty());
    }
}
