//! The `casts` pass — `cargo run -p xtask -- casts` (and `-- audit`).
//!
//! Every numeric `as` cast in non-test library code is classified. `as` is
//! the one arithmetic operator in Rust that *silently* changes values:
//! truncation, sign flips and float rounding all compile without a whisper —
//! exactly the failure mode the paper's exactness guarantee forbids on the
//! verification path (a truncated ranking id is a wrong join pair, not a
//! slow one). The upcoming SIMD/columnar layout work narrows ids
//! (`u32`→`u16`) and batches offsets, so every cast site must be either
//! provably value-preserving or carry an explicit, reviewable invariant.
//!
//! Classification, per site:
//!
//! * **widening** — the source type is lexically inferable and every source
//!   value is representable in the target (`u16 → u64`, `u32 → i64`,
//!   `bool → usize`, `u16 → f32`, a literal that fits). Clean, inventoried.
//! * **lossy** — truncation (`u64 → u32`), a same-width or narrowing sign
//!   flip (`i64 → u64`), float → int, `f64 → f32`, or an int → float cast
//!   whose source exceeds the mantissa (`u64 → f64` above 2⁵³). Requires a
//!   `cast(<why>)` tag in the comment window, or a rewrite to
//!   `From`/`try_from`.
//! * **unknown** — the source type is not lexically inferable. Treated like
//!   lossy: tag it or rewrite it (a `From::from` states the types and needs
//!   no tag at all).
//!
//! Source types are recovered without a type checker, from lexical evidence
//! only: literal suffixes, chained casts (`x as u32 as u64`), `T::MAX`-style
//! constants, a small table of known method returns (`.len()` → `usize`,
//! `.as_nanos()` → `u128`, and the project accessors `k()`/`id()`/
//! `overlap()`), same-file `name: ty` annotations (fn params, struct
//! fields, typed lets) and same-file `fn name(..) -> ty` signatures. The
//! width model fixes `usize`/`isize` at 64 bits — asserted at build time
//! below — which is the only target this workspace supports.

use std::collections::BTreeMap;
use std::path::Path;

use crate::audit::{find_tokens, PassOutcome, SourceFile, Violation};

// The verdict table below hard-codes 64-bit `usize`/`isize` (e.g. it calls
// `u64 → usize` value-preserving). Refuse to build the auditor anywhere that
// model is wrong rather than silently mis-classify.
const _: () = assert!(usize::BITS == 64, "the casts pass models usize as 64-bit");

/// A primitive numeric (or numeric-ish castable) type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NumTy {
    U8,
    U16,
    U32,
    U64,
    U128,
    Usize,
    I8,
    I16,
    I32,
    I64,
    I128,
    Isize,
    F32,
    F64,
    Bool,
    Char,
}

impl NumTy {
    fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "u8" => Self::U8,
            "u16" => Self::U16,
            "u32" => Self::U32,
            "u64" => Self::U64,
            "u128" => Self::U128,
            "usize" => Self::Usize,
            "i8" => Self::I8,
            "i16" => Self::I16,
            "i32" => Self::I32,
            "i64" => Self::I64,
            "i128" => Self::I128,
            "isize" => Self::Isize,
            "f32" => Self::F32,
            "f64" => Self::F64,
            "bool" => Self::Bool,
            "char" => Self::Char,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Self::U8 => "u8",
            Self::U16 => "u16",
            Self::U32 => "u32",
            Self::U64 => "u64",
            Self::U128 => "u128",
            Self::Usize => "usize",
            Self::I8 => "i8",
            Self::I16 => "i16",
            Self::I32 => "i32",
            Self::I64 => "i64",
            Self::I128 => "i128",
            Self::Isize => "isize",
            Self::F32 => "f32",
            Self::F64 => "f64",
            Self::Bool => "bool",
            Self::Char => "char",
        }
    }

    fn is_float(self) -> bool {
        matches!(self, Self::F32 | Self::F64)
    }

    fn is_int(self) -> bool {
        !self.is_float() && !matches!(self, Self::Bool | Self::Char)
    }

    fn signed(self) -> bool {
        matches!(
            self,
            Self::I8 | Self::I16 | Self::I32 | Self::I64 | Self::I128 | Self::Isize
        )
    }

    /// Storage bits under the 64-bit `usize` model.
    fn bits(self) -> u32 {
        match self {
            Self::U8 | Self::I8 => 8,
            Self::U16 | Self::I16 => 16,
            Self::U32 | Self::I32 | Self::F32 => 32,
            Self::U64 | Self::I64 | Self::Usize | Self::Isize | Self::F64 => 64,
            Self::U128 | Self::I128 => 128,
            Self::Bool => 1,
            Self::Char => 21,
        }
    }

    /// Bits available for magnitude (sign bit excluded).
    fn value_bits(self) -> u32 {
        self.bits() - u32::from(self.signed())
    }

    /// Exactly-representable integer magnitude bits of a float target.
    fn mantissa_bits(self) -> u32 {
        match self {
            Self::F32 => 24,
            Self::F64 => 53,
            _ => 0,
        }
    }
}

/// What the pass could learn about a cast's source expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// A known primitive type.
    Ty(NumTy),
    /// An integer literal with a known value (`neg` for a unary minus).
    Literal { value: u128, neg: bool },
    /// Not lexically inferable.
    Unknown,
}

/// Known return types of unambiguous method names: the std staples plus the
/// project accessors documented in DESIGN.md §12 (`Ranking::k`,
/// `Ranking::id`, `Ranking::overlap`, `SplitPlan::num_chunks` — all single,
/// fixed signatures across the workspace).
const METHOD_RETURNS: &[(&str, NumTy)] = &[
    ("len", NumTy::Usize),
    ("count", NumTy::Usize),
    ("capacity", NumTy::Usize),
    ("partition_point", NumTy::Usize),
    ("as_secs", NumTy::U64),
    ("as_nanos", NumTy::U128),
    ("as_micros", NumTy::U128),
    ("as_millis", NumTy::U128),
    ("subsec_nanos", NumTy::U32),
    ("finish", NumTy::U64),
    ("k", NumTy::Usize),
    ("id", NumTy::U64),
    ("overlap", NumTy::Usize),
    ("num_chunks", NumTy::Usize),
];

/// Methods that return the receiver's own type, so inference can recurse
/// into the receiver expression.
const RECEIVER_METHODS: &[&str] = &[
    "min",
    "max",
    "clamp",
    "abs",
    "abs_diff",
    "pow",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "trunc",
    "sqrt",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "rotate_left",
    "rotate_right",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Same-file `name: ty` annotations (fn params, struct fields, typed lets,
/// const generics). `None` marks a name annotated with conflicting numeric
/// types — ambiguous, never used. Shared with the panics pass (float-divisor
/// exemption).
pub(crate) fn binding_types(code: &str) -> BTreeMap<String, Option<NumTy>> {
    let bytes = code.as_bytes();
    let mut map: BTreeMap<String, Option<NumTy>> = BTreeMap::new();
    for ty_name in [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64", "bool", "char",
    ] {
        let ty = NumTy::parse(ty_name).expect("table lists primitive names");
        for pos in find_tokens(code, ty_name) {
            // `<ident> : <ty>` — reject `::<ty>` paths and generics.
            let mut i = pos;
            while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            if i == 0 || bytes[i - 1] != b':' || (i >= 2 && bytes[i - 2] == b':') {
                continue;
            }
            let mut j = i - 1;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            let end = j;
            while j > 0 && is_ident_byte(bytes[j - 1]) {
                j -= 1;
            }
            if j == end || bytes[j].is_ascii_digit() {
                continue;
            }
            let name = code[j..end].to_string();
            map.entry(name)
                .and_modify(|e| {
                    if *e != Some(ty) {
                        *e = None;
                    }
                })
                .or_insert(Some(ty));
        }
    }
    map
}

/// Same-file `fn name(..) -> ty` signatures with a primitive return type.
fn fn_return_types(code: &str) -> BTreeMap<String, Option<NumTy>> {
    let bytes = code.as_bytes();
    let mut map: BTreeMap<String, Option<NumTy>> = BTreeMap::new();
    for pos in find_tokens(code, "fn") {
        let mut j = pos + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = code[name_start..j].to_string();
        // Skip to the parameter list (over any generics) and balance it.
        while j < bytes.len() && bytes[j] != b'(' && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        let mut depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if !code[j..].starts_with("->") {
            continue;
        }
        j += 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let ty_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        let Some(ty) = NumTy::parse(&code[ty_start..j]) else {
            continue;
        };
        map.entry(name)
            .and_modify(|e| {
                if *e != Some(ty) {
                    *e = None;
                }
            })
            .or_insert(Some(ty));
    }
    map
}

/// Per-file inference context.
struct Inference {
    bindings: BTreeMap<String, Option<NumTy>>,
    fn_returns: BTreeMap<String, Option<NumTy>>,
}

impl Inference {
    fn new(code: &str) -> Self {
        Self {
            bindings: binding_types(code),
            fn_returns: fn_return_types(code),
        }
    }

    /// Infers the type of the expression *ending* at byte offset `end`
    /// (exclusive) in the code view.
    fn infer(&self, code: &str, end: usize, depth: usize) -> Source {
        if depth > 4 {
            return Source::Unknown;
        }
        let bytes = code.as_bytes();
        let mut end = end;
        while end > 0 && bytes[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        if end == 0 {
            return Source::Unknown;
        }
        match bytes[end - 1] {
            b')' => self.infer_call_or_group(code, end, depth),
            b']' => Source::Unknown,
            b if is_ident_byte(b) => self.infer_ident(code, end),
            _ => Source::Unknown,
        }
    }

    /// Expression ending in an identifier-ish token (literal, path segment,
    /// field access, chained-cast type name, or plain variable).
    fn infer_ident(&self, code: &str, end: usize) -> Source {
        let bytes = code.as_bytes();
        let mut start = end;
        while start > 0 && is_ident_byte(bytes[start - 1]) {
            start -= 1;
        }
        let token = &code[start..end];

        // Chained cast: `… as u32` — the trailing token is a primitive type
        // name preceded by the `as` keyword.
        if let Some(ty) = NumTy::parse(token) {
            let mut i = start;
            while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            if i >= 2 && &code[i - 2..i] == "as" && (i < 3 || !is_ident_byte(bytes[i - 3])) {
                return Source::Ty(ty);
            }
            return Source::Unknown;
        }

        if token == "true" || token == "false" {
            return Source::Ty(NumTy::Bool);
        }

        // Numeric literal (possibly suffixed, possibly a float's last chunk).
        if bytes[start].is_ascii_digit() {
            return parse_literal(code, start, end);
        }

        // `T::MAX` / `T::MIN` / `T::BITS`.
        if matches!(token, "MAX" | "MIN" | "BITS") && start >= 2 && &code[start - 2..start] == "::"
        {
            let mut j = start - 2;
            let ty_end = j;
            while j > 0 && is_ident_byte(bytes[j - 1]) {
                j -= 1;
            }
            if let Some(ty) = NumTy::parse(&code[j..ty_end]) {
                return if token == "BITS" {
                    Source::Ty(NumTy::U32)
                } else {
                    Source::Ty(ty)
                };
            }
            return Source::Unknown;
        }

        // Field access `recv.field` or a plain variable: both resolve
        // through the same-file annotation table.
        match self.bindings.get(token) {
            Some(&Some(ty)) => Source::Ty(ty),
            _ => Source::Unknown,
        }
    }

    /// Expression ending in `)`: a call (`name(..)`, `.method(..)`,
    /// `T::from(..)`) or a parenthesized group.
    fn infer_call_or_group(&self, code: &str, end: usize, depth: usize) -> Source {
        let bytes = code.as_bytes();
        // Balance back to the opening parenthesis.
        let mut d = 0usize;
        let mut open = end;
        while open > 0 {
            open -= 1;
            match bytes[open] {
                b')' => d += 1,
                b'(' => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if d != 0 {
            return Source::Unknown;
        }
        if open > 0 && is_ident_byte(bytes[open - 1]) {
            // A call: read the callee name.
            let mut j = open;
            while j > 0 && is_ident_byte(bytes[j - 1]) {
                j -= 1;
            }
            let name = &code[j..open];
            if j > 0 && bytes[j - 1] == b'.' {
                // Method call.
                if let Some(&(_, ty)) = METHOD_RETURNS.iter().find(|(n, _)| *n == name) {
                    return Source::Ty(ty);
                }
                if RECEIVER_METHODS.contains(&name) {
                    // Returns the receiver's type: recurse left of the dot.
                    return self.infer(code, j - 1, depth + 1);
                }
                return Source::Unknown;
            }
            if j >= 2 && &code[j - 2..j] == "::" {
                // `T::from(..)` names its own type.
                let mut t = j - 2;
                let ty_end = t;
                while t > 0 && is_ident_byte(bytes[t - 1]) {
                    t -= 1;
                }
                if name == "from" || name.starts_with("from_") {
                    if let Some(ty) = NumTy::parse(&code[t..ty_end]) {
                        return Source::Ty(ty);
                    }
                }
                return Source::Unknown;
            }
            // Free function: same-file signature table.
            return match self.fn_returns.get(name) {
                Some(&Some(ty)) => Source::Ty(ty),
                _ => Source::Unknown,
            };
        }
        // A parenthesized group: scan its contents.
        self.infer_group(code, open + 1, end - 1, depth)
    }

    /// Infers the type of a parenthesized expression body `code[from..to]`.
    /// Comparison/logic operators at depth 0 make it `bool`; otherwise the
    /// first depth-0 evidence wins (a chained `as ty`, a suffixed literal,
    /// or a resolvable identifier) — sound because Rust's binary arithmetic
    /// never mixes operand types implicitly (shift RHS excepted, which is
    /// why evidence directly after `<<`/`>>` is skipped).
    fn infer_group(&self, code: &str, from: usize, to: usize, depth: usize) -> Source {
        let bytes = code.as_bytes();
        // Pass 1: bool-producing operators at depth 0.
        let mut d = 0usize;
        let mut i = from;
        while i < to {
            match bytes[i] {
                b'(' | b'[' | b'{' => d += 1,
                b')' | b']' | b'}' => d = d.saturating_sub(1),
                b'=' if d == 0 && i + 1 < to && bytes[i + 1] == b'=' => {
                    return Source::Ty(NumTy::Bool)
                }
                b'!' if d == 0 && i + 1 < to && bytes[i + 1] == b'=' => {
                    return Source::Ty(NumTy::Bool)
                }
                b'&' if d == 0 && i + 1 < to && bytes[i + 1] == b'&' => {
                    return Source::Ty(NumTy::Bool)
                }
                b'|' if d == 0 && i + 1 < to && bytes[i + 1] == b'|' => {
                    return Source::Ty(NumTy::Bool)
                }
                b'<' | b'>' if d == 0 => {
                    let double = i + 1 < to && bytes[i + 1] == bytes[i];
                    let arrow = bytes[i] == b'>' && i > from && bytes[i - 1] == b'-';
                    let eq = i + 1 < to && bytes[i + 1] == b'=';
                    if double {
                        i += 1; // a shift, not a comparison
                    } else if !arrow {
                        let _ = eq;
                        return Source::Ty(NumTy::Bool);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Pass 2: first depth-0 type evidence, skipping shift RHS.
        let mut d = 0usize;
        let mut i = from;
        let mut after_shift = false;
        while i < to {
            let b = bytes[i];
            match b {
                b'(' | b'[' | b'{' => {
                    d += 1;
                    i += 1;
                }
                b')' | b']' | b'}' => {
                    d = d.saturating_sub(1);
                    i += 1;
                }
                b'<' | b'>' if d == 0 && i + 1 < to && bytes[i + 1] == b => {
                    after_shift = true;
                    i += 2;
                }
                _ if d == 0 && is_ident_byte(b) && (i == from || !is_ident_byte(bytes[i - 1])) => {
                    let start = i;
                    while i < to && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    let token = &code[start..i];
                    if token == "as" {
                        // `… as ty` — read the type that follows.
                        let mut j = i;
                        while j < to && bytes[j].is_ascii_whitespace() {
                            j += 1;
                        }
                        let ty_start = j;
                        while j < to && is_ident_byte(bytes[j]) {
                            j += 1;
                        }
                        if let Some(ty) = NumTy::parse(&code[ty_start..j]) {
                            if !after_shift {
                                return Source::Ty(ty);
                            }
                        }
                        i = j;
                        continue;
                    }
                    if after_shift {
                        after_shift = false;
                        continue;
                    }
                    if bytes[start].is_ascii_digit() {
                        if let Source::Ty(ty) = parse_literal(code, start, i) {
                            return Source::Ty(ty); // suffixed literal only
                        }
                        continue;
                    }
                    // Skip field/method names — only leading identifiers of a
                    // path resolve through bindings.
                    if start > from && bytes[start - 1] == b'.' {
                        continue;
                    }
                    if let Some(&Some(ty)) = self.bindings.get(token) {
                        return Source::Ty(ty);
                    }
                    let _ = depth;
                }
                _ => i += 1,
            }
        }
        Source::Unknown
    }
}

/// Parses the numeric literal whose final identifier chunk is
/// `code[start..end]`, looking left for a float's integer part.
fn parse_literal(code: &str, start: usize, end: usize) -> Source {
    let bytes = code.as_bytes();
    let token = &code[start..end];
    // Explicit suffix wins (1u32, 0x_FFu8, 1_000i64, 5f64, 1.5f32 ends in
    // an ident chunk like "5f32" after the dot).
    for ty_name in [
        "u128", "usize", "u16", "u32", "u64", "u8", "i128", "isize", "i16", "i32", "i64", "i8",
        "f32", "f64",
    ] {
        if let Some(digits) = token.strip_suffix(ty_name) {
            if !digits.is_empty() || start >= 2 && bytes[start - 1] == b'.' {
                return NumTy::parse(ty_name).map_or(Source::Unknown, Source::Ty);
            }
        }
    }
    // A float's fractional chunk: `1.5` scans as ident "5" after a '.'
    // preceded by digits. Unsuffixed floats default to f64.
    if start >= 2 && bytes[start - 1] == b'.' && bytes[start - 2].is_ascii_digit() {
        return Source::Ty(NumTy::F64);
    }
    // Trailing `1.` (rare) also lands here via the digit path below.
    let cleaned: String = token.chars().filter(|&c| c != '_').collect();
    let value = if let Some(hex) = cleaned.strip_prefix("0x").or(cleaned.strip_prefix("0X")) {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = cleaned.strip_prefix("0b").or(cleaned.strip_prefix("0B")) {
        u128::from_str_radix(bin, 2).ok()
    } else if let Some(oct) = cleaned.strip_prefix("0o").or(cleaned.strip_prefix("0O")) {
        u128::from_str_radix(oct, 8).ok()
    } else {
        cleaned.parse::<u128>().ok()
    };
    let Some(value) = value else {
        return Source::Unknown;
    };
    // Unary minus: `-3 as i64`. Only when the `-` cannot be binary.
    let mut i = start;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let neg = i > 0 && bytes[i - 1] == b'-' && {
        let mut j = i - 1;
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        j == 0
            || matches!(
                bytes[j - 1],
                b'(' | b',' | b'=' | b'[' | b'{' | b'<' | b'+' | b'*'
            )
    };
    Source::Literal { value, neg }
}

/// Why a cast is not value-preserving, or `Ok(())` if it is.
fn fit(src: NumTy, dst: NumTy) -> Result<(), String> {
    let lossy = |why: &str| Err(format!("{why} `{} as {}`", src.name(), dst.name()));
    match (src, dst) {
        (s, d) if s == d => Ok(()),
        (NumTy::Bool, d) if d.is_int() => Ok(()),
        (NumTy::Char, d) if d.is_int() => {
            if d.value_bits() >= 21 {
                Ok(())
            } else {
                lossy("truncating char cast")
            }
        }
        (s, d) if s.is_int() && d.is_int() => {
            if s.signed() && !d.signed() {
                lossy("sign-discarding cast")
            } else if s.signed() == d.signed() {
                if d.bits() >= s.bits() {
                    Ok(())
                } else {
                    lossy("truncating cast")
                }
            } else if d.bits() > s.bits() {
                Ok(()) // unsigned → strictly wider signed
            } else {
                lossy("possibly sign-flipping cast")
            }
        }
        (s, d) if s.is_int() && d.is_float() => {
            if s.value_bits() <= d.mantissa_bits() {
                Ok(())
            } else {
                lossy("precision-losing int→float cast")
            }
        }
        (s, d) if s.is_float() && d.is_int() => lossy("truncating/saturating float→int cast"),
        (NumTy::F32, NumTy::F64) => Ok(()),
        (NumTy::F64, NumTy::F32) => lossy("precision-losing cast"),
        _ => lossy("unclassifiable cast"),
    }
}

/// Whether a known literal value survives the cast exactly.
fn literal_fits(value: u128, neg: bool, dst: NumTy) -> Result<(), String> {
    let lossy = || {
        Err(format!(
            "literal {}{value} does not fit `{}` exactly",
            if neg { "-" } else { "" },
            dst.name()
        ))
    };
    if dst.is_float() {
        let limit = 1u128 << dst.mantissa_bits();
        return if value <= limit { Ok(()) } else { lossy() };
    }
    if !dst.is_int() {
        return lossy();
    }
    if neg {
        if !dst.signed() {
            return lossy();
        }
        let limit = 1u128 << dst.value_bits(); // |MIN| = 2^(bits-1)
        return if value <= limit { Ok(()) } else { lossy() };
    }
    let limit = if dst.value_bits() >= 128 {
        u128::MAX
    } else {
        (1u128 << dst.value_bits()) - 1
    };
    if value <= limit {
        Ok(())
    } else {
        lossy()
    }
}

/// One audited cast site.
pub(crate) struct Site {
    pub path: String,
    pub line: usize,
    /// Inferred source type name, `"?"` when unknown, the value for literals.
    pub src: String,
    /// Target type name.
    pub dst: &'static str,
    /// `None` = value-preserving; `Some(reason)` = needs a tag.
    pub problem: Option<String>,
    /// The `cast(<why>)` tag found, if any.
    pub tag: Option<String>,
}

impl Site {
    pub(crate) fn describe(&self) -> String {
        format!(
            "{}:{}: {} as {} — {} [{}]",
            self.path,
            self.line,
            self.src,
            self.dst,
            self.problem.as_deref().unwrap_or("widening"),
            self.tag.as_deref().unwrap_or("-"),
        )
    }
}

/// Audits one parsed file.
pub(crate) fn audit_file(file: &SourceFile) -> (Vec<Site>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    if !file.is_library() {
        return (sites, violations);
    }
    let code = &file.code;
    let bytes = code.as_bytes();
    let inference = Inference::new(code);

    for pos in find_tokens(code, "as") {
        if file.in_test(pos) {
            continue;
        }
        // Target type.
        let mut j = pos + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let ty_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        let Some(dst) = NumTy::parse(&code[ty_start..j]) else {
            continue; // `as SomeType`, `use x as y`, …
        };
        if matches!(dst, NumTy::Bool | NumTy::Char) {
            continue; // not numeric targets for this pass (u8→char is total)
        }
        let source = inference.infer(code, pos, 0);
        let line = file.line_of(pos);
        let tag = file.tag("cast", line);
        let (src_desc, problem) = match source {
            Source::Ty(ty) => (ty.name().to_string(), fit(ty, dst).err()),
            Source::Literal { value, neg } => (
                format!("{}{value}", if neg { "-" } else { "" }),
                literal_fits(value, neg, dst).err(),
            ),
            Source::Unknown => (
                "?".to_string(),
                Some(format!(
                    "cast to `{}` whose source type is not lexically inferable",
                    dst.name()
                )),
            ),
        };
        if let Some(problem) = &problem {
            if tag.is_none() {
                violations.push(file.violation(
                    "cast-audit",
                    pos,
                    format!(
                        "{problem} — justify it with a `cast(<why>)` tag (same line or ≤3 \
                         lines above) or rewrite with `From`/`try_from`"
                    ),
                ));
            }
        }
        sites.push(Site {
            path: file.rel.clone(),
            line,
            src: src_desc,
            dst: dst.name(),
            problem,
            tag,
        });
    }
    (sites, violations)
}

/// Audits the whole parsed tree.
pub(crate) fn run(_root: &Path, sources: &[SourceFile]) -> PassOutcome {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for file in sources {
        let (s, v) = audit_file(file);
        sites.extend(s.iter().map(Site::describe));
        violations.extend(v);
    }
    PassOutcome {
        pass: "casts",
        sites,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn audit(src: &str) -> (Vec<Site>, Vec<Violation>) {
        audit_file(&SourceFile::parse(LIB, src))
    }

    fn verdicts(src: &str) -> Vec<(String, Option<String>)> {
        audit(src)
            .0
            .into_iter()
            .map(|s| (format!("{} as {}", s.src, s.dst), s.problem))
            .collect()
    }

    #[test]
    fn suffixed_literal_widening_is_clean() {
        let (sites, violations) = audit("fn f() -> u64 { 3u32 as u64 }\n");
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].src, "u32");
        assert!(sites[0].problem.is_none());
    }

    #[test]
    fn annotated_param_resolves() {
        let src = "fn f(k: usize) -> u64 { k as u64 }\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[0].src, "usize");
    }

    #[test]
    fn usize_to_f64_is_lossy_and_needs_a_tag() {
        let bad = "fn f(k: usize) -> f64 { k as f64 }\n";
        let (_, violations) = audit(bad);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].msg.contains("precision-losing"),
            "{violations:?}"
        );

        let good = "fn f(k: usize) -> f64 {\n    // cast(k ≤ MAX_K ≪ 2^53 — exact in f64)\n    k as f64\n}\n";
        assert!(audit(good).1.is_empty());
    }

    #[test]
    fn truncation_and_sign_flip_are_flagged() {
        let v = verdicts("fn f(n: u64, s: i64) { let _ = n as u32; let _ = s as u64; }\n");
        assert!(v[0].1.as_deref().is_some_and(|p| p.contains("truncating")));
        assert!(v[1]
            .1
            .as_deref()
            .is_some_and(|p| p.contains("sign-discarding")));
    }

    #[test]
    fn len_method_infers_usize() {
        let src = "fn f(v: &[u8]) -> u64 { v.len() as u64 }\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[0].src, "usize");
    }

    #[test]
    fn chained_casts_resolve_left_type() {
        let src = "fn f(x: u8) { let _ = x as u16 as u64; }\n";
        let (sites, violations) = audit(src);
        assert_eq!(sites.len(), 2);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[1].src, "u16");
    }

    #[test]
    fn unknown_source_requires_a_tag() {
        let bad = "fn f() { let _ = mystery() as u64; }\n";
        let (_, violations) = audit(bad);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].msg.contains("not lexically inferable"));

        let tagged =
            "fn f() {\n    // cast(mystery() is a u32 counter)\n    let _ = mystery() as u64;\n}\n";
        assert!(audit(tagged).1.is_empty());
    }

    #[test]
    fn same_file_fn_signature_resolves_calls() {
        let src = "fn isqrt(n: u64) -> u64 { n }\nfn g() { let _ = isqrt(4) as usize; }\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        let call_site = sites
            .iter()
            .find(|s| s.src == "u64")
            .expect("call inferred");
        assert_eq!(call_site.dst, "usize");
    }

    #[test]
    fn group_expressions_use_inner_evidence() {
        let src = "fn f(ka: usize, kb: usize) -> u64 { (ka as u64 + kb as u64) * 2 as u64 }\n";
        let (_, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");

        let group = "fn f(total: u64, o: u64) -> f64 {\n    // cast(ratio only — precision loss is acceptable here)\n    (total - 2 * o) as f64\n}\n";
        let (sites, violations) = audit(group);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[0].src, "u64");
    }

    #[test]
    fn comparison_groups_are_bool() {
        let src = "fn f(a: u64, b: u64) -> usize { (a < b) as usize }\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[0].src, "bool");
    }

    #[test]
    fn shift_groups_resolve_the_shifted_value() {
        let src = "fn f() -> f64 { (1u64 << 53) as f64 }\n";
        let (sites, _) = audit(src);
        assert_eq!(sites[0].src, "u64");
        // 2^53 itself: flagged lossy (u64→f64), needs a tag.
        assert!(sites[0].problem.is_some());
    }

    #[test]
    fn unsuffixed_literal_checks_the_value() {
        let (sites, violations) = audit("fn f() { let _ = 300 as u8; let _ = 250 as u8; }\n");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].msg.contains("does not fit"));
        assert_eq!(sites.len(), 2);
    }

    #[test]
    fn max_constants_resolve() {
        let src = "const M: usize = u16::MAX as usize;\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[0].src, "u16");
    }

    #[test]
    fn receiver_methods_recurse() {
        let src = "fn f(a: u32, b: u32) -> u64 { a.max(b) as u64 }\n";
        let (sites, violations) = audit(src);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[0].src, "u32");
    }

    #[test]
    fn float_to_int_is_flagged() {
        let src = "fn f(x: f64) -> u64 { x.floor() as u64 }\n";
        let (_, violations) = audit(src);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].msg.contains("float→int"));
    }

    #[test]
    fn test_code_and_non_library_files_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f(n: u64) { let _ = n as u8; } }\n";
        assert!(audit(src).1.is_empty());
        let file = SourceFile::parse(
            "crates/demo/tests/t.rs",
            "fn f(n: u64) { let _ = n as u8; }\n",
        );
        assert!(audit_file(&file).1.is_empty());
    }

    #[test]
    fn non_numeric_as_is_ignored() {
        let src = "use std::fmt as f;\nfn g(x: &dyn std::any::Any) { let _ = x as *const _; }\n";
        let file = SourceFile::parse(LIB, "use std::fmt as f;\n");
        assert!(audit_file(&file).0.is_empty());
        let _ = src;
    }
}
