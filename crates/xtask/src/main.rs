//! `xtask` — project-native developer tooling, run as `cargo run -p xtask -- <cmd>`.
//!
//! Every command is an analysis **pass** over the shared audit core
//! (`audit.rs`: masked source model, suppression-tag grammar, ratchet
//! baseline, JSON report — DESIGN.md §12):
//!
//! * `lint` — workspace policy: no `unsafe`, no `.unwrap()`/`panic!` in
//!   library code, justified `Ordering::Relaxed`, no `todo!`/`dbg!`.
//! * `layers` — architectural layering: crate dependencies point strictly
//!   down the `rankings → minispark → core → datagen → bench` stack, `xtask`
//!   stays isolated, intra-crate module imports are acyclic.
//! * `atomics` — every `Ordering::*` site classified by operation; `Relaxed`
//!   requires a `relaxed(<class>)` tag justifying that operation.
//! * `casts` — every numeric `as` cast classified; lossy or uninferable
//!   casts require a `cast(<why>)` tag or a `From`/`try_from` rewrite.
//! * `panics` — panic-capable operators (raw indexing, computed divisors)
//!   on the hot-path file list require a `panics(<invariant>)` tag or a
//!   checked rewrite.
//! * `locks` — every `.lock()`/`.read()`/`.write()` guard inventoried with
//!   its lexical scope; wildcard guards, guards held across blocking calls,
//!   and inconsistent per-crate acquisition orders (deadlock cycles) fail.
//! * `hotalloc` — allocation expressions (`Vec::new`, `vec![`, `collect`,
//!   `format!`, collection `clone()`, …) on the hot-path file list require
//!   an `alloc(<why>)` tag, pinning the zero-steady-state-alloc property.
//! * `errors` — discarded `Result`s (`let _ =` on Result calls, bare
//!   `.ok();`, `unwrap_or_default()` on IO) require an `errors(<why>)` tag.
//! * `audit` — all eight passes in one run, with the ratchet baseline
//!   enforced and an optional `--json <path>` machine-readable report.
//!
//! Flags (any command): `--root <path>` scans a different tree,
//! `--json <path>` writes the `audit-report/v1` document. Each command exits
//! non-zero on any enforced violation, and each pass also runs as a
//! `#[test]`, so plain `cargo test` is the tier-1 gate for all of them.

mod atomics;
mod audit;
mod bench_diff;
mod casts;
mod errors;
mod hotalloc;
mod layers;
mod lint;
mod locks;
mod panics;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use audit::{Baseline, PassOutcome, Violation};

const PASSES: &[&str] = &[
    "lint", "layers", "atomics", "casts", "panics", "locks", "hotalloc", "errors",
];

const USAGE: &str = "usage: cargo run -p xtask -- \
     <lint|layers|atomics|casts|panics|locks|hotalloc|errors|audit> \
     [--root <path>] [--json <path>]\n\
     or:    cargo run -p xtask -- bench-diff <baseline.json> <candidate.json> \
     [--max-wall-pct <pct>] [--max-ns-pct <pct>] [--max-occupancy-drop <abs>]";

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    // This file lives at <root>/crates/xtask/src/main.rs.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

/// Parsed command-line flags shared by every subcommand.
#[derive(Debug, Default, PartialEq, Eq)]
struct Flags {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
}

/// Parses the `[--root <path>] [--json <path>]` tail. A flag with no operand
/// is an error (a silent fallback used to mask typos like a trailing
/// `--root`).
fn parse_flags(cmd: &str, args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut args = args;
    let mut flags = Flags::default();
    while let Some(arg) = args.next() {
        let slot = match arg.as_str() {
            "--root" => &mut flags.root,
            "--json" => &mut flags.json,
            other => return Err(format!("xtask {cmd}: unknown argument `{other}`\n{USAGE}")),
        };
        match args.next() {
            Some(path) => *slot = Some(PathBuf::from(path)),
            None => {
                return Err(format!(
                    "xtask {cmd}: `{arg}` needs a path operand\n{USAGE}"
                ))
            }
        }
    }
    Ok(flags)
}

/// Runs the named passes over one parse of the tree. Returns the outcomes in
/// the order requested plus the loaded ratchet baseline.
fn run_passes(root: &Path, which: &[&str]) -> Result<(Vec<PassOutcome>, Baseline), String> {
    let sources =
        audit::load_tree(root).map_err(|e| format!("failed to scan {}: {e}", root.display()))?;
    let baseline = audit::load_baseline(root)?;
    let mut outcomes = Vec::new();
    for &name in which {
        let outcome = match name {
            "lint" => lint::run(root, &sources),
            "layers" => layers::run(root, &sources)
                .map_err(|e| format!("failed to scan {}: {e}", root.display()))?,
            "atomics" => atomics::run(root, &sources),
            "casts" => casts::run(root, &sources),
            "panics" => panics::run(root, &sources),
            "locks" => locks::run(root, &sources),
            "hotalloc" => hotalloc::run(root, &sources),
            "errors" => errors::run(root, &sources),
            other => return Err(format!("xtask: unknown pass `{other}`\n{USAGE}")),
        };
        outcomes.push(outcome);
    }
    Ok((outcomes, baseline))
}

/// Applies the ratchet baseline to raw pass outcomes: violations beyond each
/// pass's recorded budget fail, and a count below the budget fails too until
/// the baseline line is lowered. Returns every enforced failure.
fn enforce(baseline: &Baseline, outcomes: &[PassOutcome]) -> Vec<Violation> {
    let mut failures = Vec::new();
    for outcome in outcomes {
        let (_tolerated, excess) =
            audit::apply_budget(baseline, outcome.pass, outcome.violations.clone());
        failures.extend(audit::ratchet(
            baseline,
            outcome.pass,
            outcome.violations.len(),
        ));
        failures.extend(excess);
    }
    failures
}

/// Runs `which` under `root`, prints the human report, writes the JSON
/// report when asked, and returns the process exit code.
fn run_command(cmd: &str, root: &Path, which: &[&str], json: Option<&Path>) -> ExitCode {
    let (outcomes, baseline) = match run_passes(root, which) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("xtask {cmd}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for outcome in &outcomes {
        if which.len() == 1 && !outcome.sites.is_empty() {
            eprintln!(
                "xtask {}: {} site(s) audited",
                outcome.pass,
                outcome.sites.len()
            );
            for site in &outcome.sites {
                eprintln!("  {site}");
            }
        } else {
            eprintln!(
                "xtask {}: {} site(s), {} violation(s), baseline {}",
                outcome.pass,
                outcome.sites.len(),
                outcome.violations.len(),
                baseline.budget(outcome.pass)
            );
        }
    }
    if let Some(path) = json {
        let report = audit::render_report(root, &baseline, &outcomes);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("xtask {cmd}: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask {cmd}: wrote {}", path.display());
    }
    let failures = enforce(&baseline, &outcomes);
    if failures.is_empty() {
        eprintln!("xtask {cmd}: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for v in &failures {
            eprintln!("{v}");
        }
        eprintln!(
            "xtask {cmd}: {} violation(s). Fix each site, justify it with the pass's \
             suppression tag, or (exceptionally) record debt in {} — which may only shrink.",
            failures.len(),
            audit::BASELINE_PATH
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `bench-diff` is a comparison command, not an audit pass — it takes two
    // document paths and numeric thresholds instead of the shared flags.
    if cmd == "bench-diff" {
        return bench_diff::run_cli(args);
    }
    let which: Vec<&str> = if cmd == "audit" {
        PASSES.to_vec()
    } else if let Some(pass) = PASSES.iter().find(|p| **p == cmd) {
        vec![pass]
    } else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&cmd, args) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let root = workspace_root(flags.root);
    run_command(&cmd, &root, &which, flags.json.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(violations: &[Violation]) -> String {
        violations
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Runs one pass over the real workspace and returns its outcome plus
    /// the enforced failures — the body of every tier-1 gate below.
    fn workspace_gate(pass: &'static str) -> (PassOutcome, Vec<Violation>) {
        let root = workspace_root(None);
        let (mut outcomes, baseline) =
            run_passes(&root, &[pass]).expect("workspace tree must be readable");
        let failures = enforce(&baseline, &outcomes);
        (outcomes.remove(0), failures)
    }

    /// The policy gate: `cargo test` fails on any lint violation in the
    /// workspace tree, keeping CI and local runs honest without a separate
    /// tool invocation.
    #[test]
    fn workspace_is_lint_clean() {
        let (_, failures) = workspace_gate("lint");
        assert!(
            failures.is_empty(),
            "xtask lint found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    /// The layering gate: crate ranks and intra-crate module acyclicity.
    #[test]
    fn workspace_layers_are_clean() {
        let (_, failures) = workspace_gate("layers");
        assert!(
            failures.is_empty(),
            "xtask layers found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    /// The atomics gate: every `Ordering::Relaxed` in library code carries a
    /// class tag that justifies its operation.
    #[test]
    fn workspace_atomics_are_clean() {
        let (outcome, failures) = workspace_gate("atomics");
        assert!(
            !outcome.sites.is_empty(),
            "the audit should see the executor's atomics — scanning the wrong tree?"
        );
        assert!(
            failures.is_empty(),
            "xtask atomics found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    /// The cast-soundness gate: every numeric `as` cast in library code is
    /// value-preserving, justified with a `cast(<why>)` tag, or recorded
    /// (shrinking-only) in the baseline.
    #[test]
    fn workspace_casts_are_clean() {
        let (outcome, failures) = workspace_gate("casts");
        assert!(
            !outcome.sites.is_empty(),
            "the audit should see the workspace's casts — scanning the wrong tree?"
        );
        assert!(
            failures.is_empty(),
            "xtask casts found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    /// The panic-freedom gate: raw indexing and computed divisors on the
    /// hot-path files carry `panics(<invariant>)` tags or checked rewrites.
    #[test]
    fn workspace_panics_are_clean() {
        let (outcome, failures) = workspace_gate("panics");
        assert!(
            !outcome.sites.is_empty(),
            "the audit should see hot-path index/div sites — scanning the wrong tree?"
        );
        assert!(
            failures.is_empty(),
            "xtask panics found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    /// The lock-discipline gate: every guard in library code has a clean
    /// lexical scope — no wildcard bindings, no blocking calls under a held
    /// guard, consistent per-crate acquisition order.
    #[test]
    fn workspace_locks_are_clean() {
        let (outcome, failures) = workspace_gate("locks");
        assert!(
            !outcome.sites.is_empty(),
            "the audit should see the runtime's lock sites — scanning the wrong tree?"
        );
        assert!(
            failures.is_empty(),
            "xtask locks found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    /// The allocation gate: hot-path allocation expressions carry an
    /// `alloc(<why>)` tag, so the kernels' zero-steady-state-allocation
    /// property can only improve.
    #[test]
    fn workspace_hotalloc_is_clean() {
        let (outcome, failures) = workspace_gate("hotalloc");
        assert!(
            !outcome.sites.is_empty(),
            "the audit should see hot-path allocation sites — scanning the wrong tree?"
        );
        assert!(
            failures.is_empty(),
            "xtask hotalloc found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    /// The error-handling gate: no `Result` is silently discarded in library
    /// code without an `errors(<why>)` tag naming the reason.
    #[test]
    fn workspace_errors_are_clean() {
        let (outcome, failures) = workspace_gate("errors");
        assert!(
            !outcome.sites.is_empty(),
            "the audit should see the tagged best-effort sites — scanning the wrong tree?"
        );
        assert!(
            failures.is_empty(),
            "xtask errors found {} violation(s):\n{}",
            failures.len(),
            render(&failures)
        );
    }

    // -- ratchet fixture ----------------------------------------------------
    //
    // `fixtures/ratchet-demo` is a committed mini-tree with exactly one
    // unjustified cast (recorded in its own audit-baseline.txt). It is not a
    // workspace member and `collect_sources` skips `fixtures` dirs, so the
    // workspace gates above never see it.

    fn fixture_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/ratchet-demo")
    }

    #[test]
    fn fixture_debt_is_tolerated_at_its_recorded_budget() {
        let (outcomes, baseline) =
            run_passes(&fixture_root(), &["casts"]).expect("fixture tree must be readable");
        assert_eq!(
            outcomes[0].violations.len(),
            1,
            "the fixture carries exactly one unjustified cast:\n{}",
            render(&outcomes[0].violations)
        );
        assert_eq!(
            baseline.budget("casts"),
            1,
            "recorded in the fixture baseline"
        );
        let failures = enforce(&baseline, &outcomes);
        assert!(failures.is_empty(), "{}", render(&failures));
    }

    #[test]
    fn an_unjustified_new_cast_fails_the_gate() {
        let root = fixture_root();
        let mut sources = audit::load_tree(&root).expect("fixture tree must be readable");
        sources.push(audit::SourceFile::parse(
            "crates/demo/src/extra.rs",
            "pub fn f(x: u64) -> u16 { x as u16 }\n",
        ));
        let outcome = casts::run(&root, &sources);
        let baseline = audit::load_baseline(&root).expect("fixture baseline parses");
        let failures = enforce(&baseline, &[outcome]);
        assert_eq!(failures.len(), 1, "{}", render(&failures));
        assert_eq!(failures[0].rule, "cast-audit");
        assert_eq!(failures[0].path, "crates/demo/src/extra.rs");
    }

    #[test]
    fn an_unjustified_new_index_fails_the_gate() {
        // The panics pass scopes to HOT_PATHS, so stage the fixture source
        // under a hot path name.
        let hot = audit::SourceFile::parse(
            "crates/core/src/kernels.rs",
            "pub fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\n",
        );
        let outcome = panics::run(Path::new("."), &[hot]);
        let failures = enforce(&Baseline::default(), &[outcome]);
        assert_eq!(failures.len(), 1, "{}", render(&failures));
        assert_eq!(failures[0].rule, "panics-audit");
    }

    #[test]
    fn fixture_debt_covers_the_semantic_passes_too() {
        // The fixture also carries exactly one unjustified site per semantic
        // pass (a wildcard guard, a hot-path `Vec::new`, a discarded
        // `Result`), each recorded at budget 1 in its baseline.
        let (outcomes, baseline) = run_passes(&fixture_root(), &["locks", "hotalloc", "errors"])
            .expect("fixture tree must be readable");
        for outcome in &outcomes {
            assert_eq!(
                outcome.violations.len(),
                1,
                "pass `{}` should see exactly one debt site:\n{}",
                outcome.pass,
                render(&outcome.violations)
            );
            assert_eq!(baseline.budget(outcome.pass), 1, "{}", outcome.pass);
        }
        let failures = enforce(&baseline, &outcomes);
        assert!(failures.is_empty(), "{}", render(&failures));
    }

    #[test]
    fn an_unjustified_new_lock_site_fails_the_gate() {
        let wild = audit::SourceFile::parse(
            "crates/demo/src/extra.rs",
            "pub fn f(m: &std::sync::Mutex<u32>) {\n    let _ = m.lock().expect(\"poisoned\");\n}\n",
        );
        let outcome = locks::run(Path::new("."), &[wild]);
        let failures = enforce(&Baseline::default(), &[outcome]);
        assert_eq!(failures.len(), 1, "{}", render(&failures));
        assert_eq!(failures[0].rule, "lock-wildcard");
    }

    #[test]
    fn an_unjustified_new_hot_allocation_fails_the_gate() {
        // hotalloc scopes to HOT_PATHS, so stage the source under a hot name.
        let hot = audit::SourceFile::parse(
            "crates/minispark/src/shuffle.rs",
            "pub fn f() -> Vec<u32> { Vec::new() }\n",
        );
        let outcome = hotalloc::run(Path::new("."), &[hot]);
        let failures = enforce(&Baseline::default(), &[outcome]);
        assert_eq!(failures.len(), 1, "{}", render(&failures));
        assert_eq!(failures[0].rule, "alloc-audit");
    }

    #[test]
    fn an_unjustified_discarded_result_fails_the_gate() {
        let sloppy = audit::SourceFile::parse(
            "crates/demo/src/extra.rs",
            "pub fn f(p: &std::path::Path) {\n    let _ = std::fs::remove_file(p);\n}\n",
        );
        let outcome = errors::run(Path::new("."), &[sloppy]);
        let failures = enforce(&Baseline::default(), &[outcome]);
        assert_eq!(failures.len(), 1, "{}", render(&failures));
        assert_eq!(failures[0].rule, "errors-discard");
    }

    #[test]
    fn fixing_semantic_debt_forces_the_baseline_down() {
        // Each semantic pass's fixture debt, once fixed, must be struck from
        // the fixture baseline — a clean outcome against budget 1 is stale.
        let baseline = audit::load_baseline(&fixture_root()).expect("fixture baseline parses");
        for pass in ["locks", "hotalloc", "errors"] {
            let clean = PassOutcome {
                pass,
                sites: Vec::new(),
                violations: Vec::new(),
            };
            let failures = enforce(&baseline, &[clean]);
            assert_eq!(failures.len(), 1, "{pass}: {}", render(&failures));
            assert_eq!(failures[0].rule, "ratchet-stale", "{pass}");
        }
    }

    #[test]
    fn fixing_recorded_debt_forces_the_baseline_down() {
        // Simulate the fixture's one debt site being fixed: the pass now
        // reports zero, the baseline still budgets one — ratchet-stale.
        let root = fixture_root();
        let baseline = audit::load_baseline(&root).expect("fixture baseline parses");
        let clean = PassOutcome {
            pass: "casts",
            sites: Vec::new(),
            violations: Vec::new(),
        };
        let failures = enforce(&baseline, &[clean]);
        assert_eq!(failures.len(), 1, "{}", render(&failures));
        assert_eq!(failures[0].rule, "ratchet-stale");
        assert!(failures[0].msg.contains("lower the `casts` line"));
    }

    #[test]
    fn the_workspace_baseline_is_all_zero() {
        // The real tree carries no recorded debt: every budget in the
        // committed baseline must be zero, so the gates above are strict.
        let baseline =
            audit::load_baseline(&workspace_root(None)).expect("workspace baseline parses");
        for pass in PASSES {
            assert_eq!(
                baseline.budget(pass),
                0,
                "pass `{pass}` carries recorded debt — burn it down instead"
            );
        }
    }

    // -- CLI plumbing -------------------------------------------------------

    #[test]
    fn workspace_root_prefers_the_explicit_path() {
        let explicit = PathBuf::from("/tmp/some-tree");
        assert_eq!(workspace_root(Some(explicit.clone())), explicit);
    }

    #[test]
    fn workspace_root_derives_from_the_manifest_dir() {
        let root = workspace_root(None);
        assert!(
            root.join("crates/xtask/src/main.rs").is_file(),
            "derived root {} should contain this very file",
            root.display()
        );
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn parse_flags_accepts_root_and_json() {
        let args = [
            "--root".to_string(),
            "/tmp/tree".to_string(),
            "--json".to_string(),
            "report.json".to_string(),
        ];
        let flags = parse_flags("audit", args.into_iter()).expect("valid flags");
        assert_eq!(flags.root, Some(PathBuf::from("/tmp/tree")));
        assert_eq!(flags.json, Some(PathBuf::from("report.json")));
    }

    #[test]
    fn parse_flags_rejects_a_missing_operand() {
        for flag in ["--root", "--json"] {
            let args = [flag.to_string()];
            let err = parse_flags("lint", args.into_iter()).expect_err("missing operand");
            assert!(err.contains("needs a path operand"), "{err}");
            assert!(err.contains("usage:"), "{err}");
        }
    }

    #[test]
    fn parse_flags_rejects_unknown_flags() {
        let args = ["--frobnicate".to_string()];
        let err = parse_flags("layers", args.into_iter()).expect_err("unknown flag");
        assert!(err.contains("unknown argument `--frobnicate`"), "{err}");
    }

    #[test]
    fn the_json_report_covers_every_pass() {
        let root = workspace_root(None);
        let (outcomes, baseline) =
            run_passes(&root, PASSES).expect("workspace tree must be readable");
        let json = audit::render_report(&root, &baseline, &outcomes);
        for pass in PASSES {
            assert!(json.contains(&format!("\"pass\": \"{pass}\"")), "{pass}");
        }
        assert!(json.contains("\"schema\": \"audit-report/v1\""));
    }
}
