//! `xtask` — project-native developer tooling, run as `cargo run -p xtask -- <cmd>`.
//!
//! Three commands:
//!
//! * `lint [--root <path>]` — static analysis of the workspace source tree
//!   against the project policy (no `unsafe`, no `.unwrap()`/`panic!` in
//!   library code, justified `Ordering::Relaxed`, no `todo!`/`dbg!`).
//! * `layers [--root <path>]` — architectural layering: crate dependencies
//!   must point strictly down the `rankings → minispark → core → datagen →
//!   bench` stack, `xtask` stays isolated, and intra-crate module imports
//!   must be acyclic.
//! * `atomics [--root <path>]` — atomics audit: every `Ordering::*` site in
//!   library code is classified by operation; `Relaxed` requires a
//!   `relaxed(<class>)` tag that actually justifies that operation.
//!
//! Each command exits non-zero on any violation, and each analysis also runs
//! as a `#[test]`, so plain `cargo test` enforces all three policies too.

mod atomics;
mod layers;
mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    // This file lives at <root>/crates/xtask/src/main.rs.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or(manifest.clone(), std::path::Path::to_path_buf)
}

const USAGE: &str = "usage: cargo run -p xtask -- <lint|layers|atomics> [--root <path>]";

/// Parses the `[--root <path>]` tail shared by every subcommand. A `--root`
/// flag with no operand is an error (it used to fall back to the workspace
/// root silently, masking typos like `--root` at the end of a command line).
fn parse_root(cmd: &str, args: impl Iterator<Item = String>) -> Result<Option<PathBuf>, String> {
    let mut args = args;
    let mut root = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    return Err(format!(
                        "xtask {cmd}: `--root` needs a path operand\n{USAGE}"
                    ))
                }
            },
            other => return Err(format!("xtask {cmd}: unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(root)
}

/// Runs one analysis pass and reports its violations uniformly.
fn run_pass(
    name: &str,
    root: &std::path::Path,
    pass: impl FnOnce(&std::path::Path) -> std::io::Result<Vec<lint::Violation>>,
    fix_hint: &str,
) -> ExitCode {
    match pass(root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask {name}: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!(
                "xtask {name}: {} violation(s). {fix_hint}",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask {name}: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn run_atomics(root: &std::path::Path) -> ExitCode {
    match atomics::audit_tree(root) {
        Ok((sites, violations)) => {
            eprintln!("xtask atomics: {} ordering site(s) audited", sites.len());
            for site in &sites {
                eprintln!("  {}", site.describe());
            }
            if violations.is_empty() {
                eprintln!("xtask atomics: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!(
                    "xtask atomics: {} violation(s). Tag each Relaxed site with \
                     `relaxed(<class>)` where the class justifies the operation \
                     (see crates/xtask/src/atomics.rs).",
                    violations.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask atomics: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next();
    let Some(cmd) = cmd else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if !matches!(cmd.as_str(), "lint" | "layers" | "atomics") {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let root = match parse_root(&cmd, args) {
        Ok(root) => workspace_root(root),
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "lint" => run_pass(
            "lint",
            &root,
            lint::lint_tree,
            "Fix them or (exceptionally, with a reviewer's blessing) add `rule path` \
             lines to crates/xtask/lint-allow.txt.",
        ),
        "layers" => run_pass(
            "layers",
            &root,
            layers::layers_tree,
            "Dependencies must point strictly down the rankings → minispark → core → \
             datagen → bench stack, and intra-crate module imports must be acyclic.",
        ),
        "atomics" => run_atomics(&root),
        _ => unreachable!("command validated above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(violations: &[lint::Violation]) -> String {
        violations
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The policy gate: `cargo test` fails on any lint violation in the
    /// workspace tree, keeping CI and local runs honest without a separate
    /// tool invocation.
    #[test]
    fn workspace_is_lint_clean() {
        let root = workspace_root(None);
        let violations = lint::lint_tree(&root).expect("workspace tree must be readable");
        assert!(
            violations.is_empty(),
            "xtask lint found {} violation(s):\n{}",
            violations.len(),
            render(&violations)
        );
    }

    /// The layering gate: crate ranks and intra-crate module acyclicity.
    #[test]
    fn workspace_layers_are_clean() {
        let root = workspace_root(None);
        let violations = layers::layers_tree(&root).expect("workspace tree must be readable");
        assert!(
            violations.is_empty(),
            "xtask layers found {} violation(s):\n{}",
            violations.len(),
            render(&violations)
        );
    }

    /// The atomics gate: every `Ordering::Relaxed` in library code carries a
    /// class tag that justifies its operation.
    #[test]
    fn workspace_atomics_are_clean() {
        let root = workspace_root(None);
        let (sites, violations) =
            atomics::audit_tree(&root).expect("workspace tree must be readable");
        assert!(
            !sites.is_empty(),
            "the audit should see the executor's atomics — scanning the wrong tree?"
        );
        assert!(
            violations.is_empty(),
            "xtask atomics found {} violation(s):\n{}",
            violations.len(),
            render(&violations)
        );
    }

    #[test]
    fn workspace_root_prefers_the_explicit_path() {
        let explicit = PathBuf::from("/tmp/some-tree");
        assert_eq!(workspace_root(Some(explicit.clone())), explicit);
    }

    #[test]
    fn workspace_root_derives_from_the_manifest_dir() {
        let root = workspace_root(None);
        assert!(
            root.join("crates/xtask/src/main.rs").is_file(),
            "derived root {} should contain this very file",
            root.display()
        );
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn parse_root_accepts_a_path_operand() {
        let args = ["--root".to_string(), "/tmp/tree".to_string()];
        let root = parse_root("lint", args.into_iter()).expect("valid flags");
        assert_eq!(root, Some(PathBuf::from("/tmp/tree")));
    }

    #[test]
    fn parse_root_rejects_a_missing_operand() {
        let args = ["--root".to_string()];
        let err = parse_root("lint", args.into_iter()).expect_err("missing operand");
        assert!(err.contains("needs a path operand"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn parse_root_rejects_unknown_flags() {
        let args = ["--frobnicate".to_string()];
        let err = parse_root("layers", args.into_iter()).expect_err("unknown flag");
        assert!(err.contains("unknown argument `--frobnicate`"), "{err}");
    }
}
