//! `xtask` — project-native developer tooling, run as `cargo run -p xtask -- <cmd>`.
//!
//! Currently one command:
//!
//! * `lint [--root <path>]` — static analysis of the workspace source tree
//!   against the project policy (no `unsafe`, no `.unwrap()`/`panic!` in
//!   library code, justified `Ordering::Relaxed`, no `todo!`/`dbg!`). Exits
//!   non-zero when any violation is found. The same analysis runs as a
//!   `#[test]`, so plain `cargo test` enforces the policy too.

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    // This file lives at <root>/crates/xtask/src/main.rs.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or(manifest.clone(), std::path::Path::to_path_buf)
}

fn run_lint(root: &std::path::Path) -> ExitCode {
    match lint::lint_tree(root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!(
                "xtask lint: {} violation(s). Fix them or (exceptionally, with a reviewer's \
                 blessing) add `rule path` lines to crates/xtask/lint-allow.txt.",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next();
    match cmd.as_deref() {
        Some("lint") => {
            let mut root = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = args.next().map(PathBuf::from),
                    other => {
                        eprintln!("xtask lint: unknown argument `{other}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            run_lint(&workspace_root(root))
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--root <path>]");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The policy gate: `cargo test` fails on any lint violation in the
    /// workspace tree, keeping CI and local runs honest without a separate
    /// tool invocation.
    #[test]
    fn workspace_is_lint_clean() {
        let root = workspace_root(None);
        let violations = lint::lint_tree(&root).expect("workspace tree must be readable");
        assert!(
            violations.is_empty(),
            "xtask lint found {} violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
