//! `cargo run -p xtask -- layers` — architectural layering analysis.
//!
//! The workspace is a strict stack (DESIGN.md §"Concurrency checking and
//! architectural analysis"):
//!
//! ```text
//! topk-rankings  →  minispark  →  topk-simjoin (core)  →  topk-datagen
//!               →  topk-bench  →  topk-simjoin-suite (root)
//! ```
//!
//! with `xtask` standing outside the stack (zero workspace dependencies).
//! Three rules make the stack structural rather than aspirational:
//!
//! * **crate-rank** — a crate's `[dependencies]` may only name workspace
//!   crates of strictly lower rank (no back-edges, so e.g. no `bench` types
//!   can ever reach `core`). `[dev-dependencies]` are exempt from rank (a
//!   lower layer may use a higher one's *test fixtures* — core's tests use
//!   datagen) but still feed the source-reference rule below.
//! * **crate-ref** — a source file may only reference (`ident::…`) workspace
//!   crates its manifest declares for that context: library code sees
//!   `[dependencies]`; test code (`tests/`, `benches/`, `examples/`,
//!   `#[cfg(test)]` regions) additionally sees `[dev-dependencies]`.
//! * **module-cycle** — within each crate, the intra-crate import graph
//!   (`crate::<module>` references in non-test code) must be acyclic, so
//!   the layering holds *inside* crates too (e.g. the executor depends on
//!   `sched`, never on the `check` harness above it).
//!
//! Like `lint`, the pass is purely lexical (comments and literals are
//! masked first) and dependency-free.

use std::collections::BTreeMap;
use std::path::Path;

use crate::audit::{find_tokens, in_regions, PassOutcome, SourceFile, Violation};

/// One workspace crate: directory prefix, manifest package name, Rust
/// identifier, and layer rank (lower = further down the stack; `None` =
/// outside the stack, may depend on nothing in the workspace).
struct WorkspaceCrate {
    dir: &'static str,
    package: &'static str,
    ident: &'static str,
    rank: Option<usize>,
}

/// The layering contract. Order within the table is the documentation
/// order; the `rank` field is the law.
const CRATES: &[WorkspaceCrate] = &[
    WorkspaceCrate {
        dir: "crates/rankings",
        package: "topk-rankings",
        ident: "topk_rankings",
        rank: Some(0),
    },
    WorkspaceCrate {
        dir: "crates/minispark",
        package: "minispark",
        ident: "minispark",
        rank: Some(1),
    },
    WorkspaceCrate {
        dir: "crates/core",
        package: "topk-simjoin",
        ident: "topk_simjoin",
        rank: Some(2),
    },
    WorkspaceCrate {
        dir: "crates/datagen",
        package: "topk-datagen",
        ident: "topk_datagen",
        rank: Some(3),
    },
    WorkspaceCrate {
        dir: "crates/bench",
        package: "topk-bench",
        ident: "topk_bench",
        rank: Some(4),
    },
    WorkspaceCrate {
        dir: "",
        package: "topk-simjoin-suite",
        ident: "topk_simjoin_suite",
        rank: Some(5),
    },
    WorkspaceCrate {
        dir: "crates/xtask",
        package: "xtask",
        ident: "xtask",
        rank: None,
    },
];

fn crate_by_package(package: &str) -> Option<&'static WorkspaceCrate> {
    CRATES.iter().find(|c| c.package == package)
}

/// The workspace crate a root-relative path belongs to. Longest directory
/// prefix wins, so `crates/…` files never fall through to the root suite.
fn crate_of_path(rel: &str) -> Option<&'static WorkspaceCrate> {
    CRATES
        .iter()
        .filter(|c| c.dir.is_empty() || rel.starts_with(&format!("{}/", c.dir)))
        .max_by_key(|c| c.dir.len())
}

/// Workspace-crate names found in one manifest: `(lib_deps, dev_deps)`.
fn manifest_workspace_deps(manifest: &str) -> (Vec<&'static str>, Vec<&'static str>) {
    let mut lib = Vec::new();
    let mut dev = Vec::new();
    let mut section = "";
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line;
            continue;
        }
        let bucket: &mut Vec<&'static str> = match section {
            "[dependencies]" => &mut lib,
            "[dev-dependencies]" => &mut dev,
            _ => continue,
        };
        // `name = …` or `name.workspace = true`; the name ends at the first
        // `.`, `=` or whitespace.
        let name = line
            .split(|c: char| c == '.' || c == '=' || c.is_whitespace())
            .next()
            .unwrap_or("");
        if let Some(c) = crate_by_package(name) {
            bucket.push(c.package);
        }
    }
    (lib, dev)
}

/// Checks every manifest against the crate-rank rule.
fn check_manifest_ranks(root: &Path, violations: &mut Vec<Violation>) -> std::io::Result<()> {
    for c in CRATES {
        let rel = if c.dir.is_empty() {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", c.dir)
        };
        let manifest = std::fs::read_to_string(root.join(&rel))?;
        let (lib_deps, _) = manifest_workspace_deps(&manifest);
        for dep in lib_deps {
            let dep_crate = crate_by_package(dep).expect("deps are filtered to workspace crates");
            let ok = match (c.rank, dep_crate.rank) {
                (Some(mine), Some(theirs)) => theirs < mine,
                // A crate outside the stack (xtask) may depend on nothing in
                // the workspace; nothing may depend on it either.
                _ => false,
            };
            if !ok {
                violations.push(Violation {
                    rule: "crate-rank",
                    path: rel.clone(),
                    line: 1,
                    col: 1,
                    msg: format!(
                        "`{}` must not depend on `{dep}`: layering is \
                         rankings → minispark → core → datagen → bench → suite \
                         (back-edges and xtask coupling are banned)",
                        c.package
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Positions in `code` where `ident` is used as a crate path (`ident::…`).
fn crate_path_refs(code: &str, ident: &str) -> Vec<usize> {
    find_tokens(code, ident)
        .into_iter()
        .filter(|&pos| code[pos + ident.len()..].trim_start().starts_with("::"))
        .collect()
}

/// Checks every source file against the crate-ref rule.
fn check_source_refs(
    root: &Path,
    sources: &[SourceFile],
    violations: &mut Vec<Violation>,
) -> std::io::Result<()> {
    // Manifest deps per package, resolved once.
    let mut deps: BTreeMap<&'static str, (Vec<&'static str>, Vec<&'static str>)> = BTreeMap::new();
    for c in CRATES {
        let rel = if c.dir.is_empty() {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", c.dir)
        };
        let manifest = std::fs::read_to_string(root.join(rel))?;
        deps.insert(c.package, manifest_workspace_deps(&manifest));
    }

    for file in sources {
        let rel = &file.rel;
        let Some(owner) = crate_of_path(rel) else {
            continue;
        };
        let (lib_deps, dev_deps) = &deps[owner.package];
        let test_file = ["tests/", "benches/", "examples/"]
            .iter()
            .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")));
        for target in CRATES {
            if target.ident == owner.ident {
                continue;
            }
            for pos in crate_path_refs(&file.code, target.ident) {
                let test_context = test_file || file.in_test(pos);
                let allowed = lib_deps.contains(&target.package)
                    || (test_context && dev_deps.contains(&target.package));
                if !allowed {
                    violations.push(file.violation(
                        "crate-ref",
                        pos,
                        format!(
                            "`{}::` used in `{}` {} code, but `{}` is not in its manifest's {}",
                            target.ident,
                            owner.package,
                            if test_context { "test" } else { "library" },
                            target.package,
                            if test_context {
                                "[dependencies]/[dev-dependencies]"
                            } else {
                                "[dependencies]"
                            },
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The module a root-relative source path defines, if it participates in
/// its crate's module graph: a direct child of `src/` (file or directory),
/// excluding crate roots (`lib.rs`, `main.rs`, the suite's `suite.rs`) and
/// binary targets under `src/bin/`.
fn module_of_path<'a>(owner: &WorkspaceCrate, rel: &'a str) -> Option<&'a str> {
    let under_src = if owner.dir.is_empty() {
        rel.strip_prefix("src/")
    } else {
        rel.strip_prefix(&format!("{}/src/", owner.dir)[..])
    }?;
    let first = under_src.split('/').next().unwrap_or("");
    if first == "bin" {
        return None;
    }
    if under_src.contains('/') {
        return Some(first); // src/<module>/… — a directory module
    }
    let stem = first.strip_suffix(".rs")?;
    match stem {
        "lib" | "main" | "suite" => None,
        _ => Some(stem),
    }
}

/// Module names referenced as `crate::<module>` in non-test code, including
/// brace groups (`use crate::{a, b::c}` contributes `a` and `b`).
fn crate_module_refs(code: &str, regions: &[(usize, usize)]) -> Vec<String> {
    let mut out = Vec::new();
    for pos in find_tokens(code, "crate") {
        if in_regions(regions, pos) {
            continue;
        }
        let rest = &code[pos + "crate".len()..];
        let Some(rest) = rest.trim_start().strip_prefix("::") else {
            continue;
        };
        let rest = rest.trim_start();
        if let Some(group) = rest.strip_prefix('{') {
            // First ident of each depth-1 comma-separated element.
            let mut depth = 1usize;
            let mut element_start = true;
            let mut current = String::new();
            for ch in group.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        if depth == 1 {
                            break;
                        }
                        depth -= 1;
                    }
                    ',' if depth == 1 => {
                        if !current.is_empty() {
                            out.push(std::mem::take(&mut current));
                        }
                        element_start = true;
                    }
                    c if depth == 1 && element_start => {
                        if c.is_alphanumeric() || c == '_' {
                            current.push(c);
                        } else if !current.is_empty() {
                            out.push(std::mem::take(&mut current));
                            element_start = false;
                        }
                    }
                    _ => {}
                }
            }
            if !current.is_empty() {
                out.push(current);
            }
        } else {
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                out.push(ident);
            }
        }
    }
    out
}

/// Checks each crate's intra-crate module graph for cycles.
fn check_module_cycles(sources: &[SourceFile], violations: &mut Vec<Violation>) {
    // crate package → module → set of referenced modules.
    let mut graphs: BTreeMap<&'static str, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    for file in sources {
        let Some(owner) = crate_of_path(&file.rel) else {
            continue;
        };
        let Some(module) = module_of_path(owner, &file.rel) else {
            continue;
        };
        let refs = crate_module_refs(&file.code, file.test_regions());
        graphs
            .entry(owner.package)
            .or_default()
            .entry(module.to_string())
            .or_default()
            .extend(refs);
    }
    for (package, mut graph) in graphs {
        let known: Vec<String> = graph.keys().cloned().collect();
        for (module, refs) in &mut graph {
            refs.retain(|r| r != module && known.contains(r));
            refs.sort();
            refs.dedup();
        }
        if let Some(cycle) = find_cycle(&graph) {
            violations.push(Violation {
                rule: "module-cycle",
                path: format!("{package} (module graph)"),
                line: 1,
                col: 1,
                msg: format!(
                    "intra-crate import cycle: {} — break it by moving the shared \
                     piece into the lower module",
                    cycle.join(" → ")
                ),
            });
        }
    }
}

/// Depth-first search for a cycle; returns the cycle path (closed: first
/// element repeated at the end) if one exists.
fn find_cycle(graph: &BTreeMap<String, Vec<String>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<&str, Color> =
        graph.keys().map(|k| (k.as_str(), Color::White)).collect();
    let mut stack: Vec<&str> = Vec::new();

    fn dfs<'a>(
        node: &'a str,
        graph: &'a BTreeMap<String, Vec<String>>,
        color: &mut BTreeMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, Color::Grey);
        stack.push(node);
        for next in graph.get(node).into_iter().flatten() {
            match color.get(next.as_str()).copied().unwrap_or(Color::Black) {
                Color::Grey => {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|&s| s.to_string()).collect();
                    cycle.push(next.clone());
                    return Some(cycle);
                }
                Color::White => {
                    if let Some(cycle) = dfs(next, graph, color, stack) {
                        return Some(cycle);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }

    let nodes: Vec<&str> = graph.keys().map(String::as_str).collect();
    for node in nodes {
        if color[node] == Color::White {
            if let Some(cycle) = dfs(node, graph, &mut color, &mut stack) {
                return Some(cycle);
            }
        }
    }
    None
}

/// Runs all three layering rules over the parsed tree.
pub(crate) fn run(root: &Path, sources: &[SourceFile]) -> std::io::Result<PassOutcome> {
    let mut violations = Vec::new();
    check_manifest_ranks(root, &mut violations)?;
    check_source_refs(root, sources, &mut violations)?;
    check_module_cycles(sources, &mut violations);
    Ok(PassOutcome {
        pass: "layers",
        sites: Vec::new(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_to_crate_mapping() {
        assert_eq!(
            crate_of_path("crates/minispark/src/executor.rs")
                .unwrap()
                .package,
            "minispark"
        );
        assert_eq!(
            crate_of_path("crates/core/tests/t.rs").unwrap().package,
            "topk-simjoin"
        );
        assert_eq!(
            crate_of_path("src/bin/topk-cli.rs").unwrap().package,
            "topk-simjoin-suite"
        );
        assert_eq!(
            crate_of_path("examples/engine_tour.rs").unwrap().package,
            "topk-simjoin-suite"
        );
    }

    #[test]
    fn manifest_parsing_separates_dep_kinds() {
        let manifest = "[package]\nname = \"topk-simjoin\"\n\n[dependencies]\n\
                        topk-rankings = { workspace = true }\nminispark.workspace = true\n\
                        rand = \"0.8\"\n\n[dev-dependencies]\ntopk-datagen = { workspace = true }\n";
        let (lib, dev) = manifest_workspace_deps(manifest);
        assert_eq!(lib, vec!["topk-rankings", "minispark"]);
        assert_eq!(dev, vec!["topk-datagen"]);
    }

    #[test]
    fn module_of_path_rules() {
        let ms = crate_by_package("minispark").unwrap();
        assert_eq!(
            module_of_path(ms, "crates/minispark/src/sched.rs"),
            Some("sched")
        );
        assert_eq!(module_of_path(ms, "crates/minispark/src/lib.rs"), None);
        assert_eq!(module_of_path(ms, "crates/minispark/tests/t.rs"), None);
        let suite = crate_by_package("topk-simjoin-suite").unwrap();
        assert_eq!(module_of_path(suite, "src/suite.rs"), None);
        assert_eq!(module_of_path(suite, "src/bin/topk-cli.rs"), None);
    }

    #[test]
    fn module_refs_handle_brace_groups() {
        let code = "use crate::config::ClusterConfig;\nuse crate::{sched, trace::TraceCollector};\nfn f() { crate::spill::noop(); }\n";
        let refs = crate_module_refs(code, &[]);
        assert_eq!(refs, vec!["config", "sched", "trace", "spill"]);
    }

    #[test]
    fn module_refs_skip_test_regions() {
        let src = "use crate::alpha::X;\n#[cfg(test)]\nmod tests { use crate::beta::Y; }\n";
        let file = SourceFile::parse("crates/minispark/src/demo.rs", src);
        assert_eq!(
            crate_module_refs(&file.code, file.test_regions()),
            vec!["alpha"]
        );
    }

    #[test]
    fn cycle_detection_finds_and_clears() {
        let mut graph: BTreeMap<String, Vec<String>> = BTreeMap::new();
        graph.insert("a".into(), vec!["b".into()]);
        graph.insert("b".into(), vec!["c".into()]);
        graph.insert("c".into(), vec![]);
        assert!(find_cycle(&graph).is_none());
        graph.get_mut("c").unwrap().push("a".into());
        let cycle = find_cycle(&graph).expect("a→b→c→a is a cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4);
    }

    #[test]
    fn back_edge_in_manifest_is_flagged() {
        // Simulated: core depending on bench would violate the rank rule.
        let c = crate_by_package("topk-simjoin").unwrap();
        let bench = crate_by_package("topk-bench").unwrap();
        assert!(c.rank.unwrap() < bench.rank.unwrap());
        let (lib, _) =
            manifest_workspace_deps("[dependencies]\ntopk-bench = { workspace = true }\n");
        assert_eq!(lib, vec!["topk-bench"]);
    }
}
