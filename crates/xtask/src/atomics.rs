//! The `atomics` pass — `cargo run -p xtask -- atomics` (and `-- audit`).
//!
//! PR 1's `relaxed-comment` lint only demanded *a* comment near every
//! `Ordering::Relaxed`. This pass makes the justification structural: every
//! `Ordering::*` site in non-test library code is parsed, its operation is
//! recovered (which atomic method consumes the ordering), and `Relaxed`
//! sites must carry a machine-readable **class tag** in the audit core's
//! comment window (same line or ≤3 lines above):
//!
//! ```text
//! // relaxed(counter): an independent duration counter, only read after …
//! busy_nanos.fetch_add(elapsed, Ordering::Relaxed);
//! ```
//!
//! The taxonomy (DESIGN.md §"Concurrency checking and architectural
//! analysis"):
//!
//! | class             | meaning                                             | legal operations |
//! |-------------------|-----------------------------------------------------|------------------|
//! | `counter`         | monotonic statistic, read only after a join/barrier | RMW (`fetch_*`)  |
//! | `cursor`          | work-stealing claim index; atomicity is the payload | RMW (`fetch_*`)  |
//! | `unique-id`       | id/suffix allocator; only distinctness matters      | RMW (`fetch_*`)  |
//! | `flag`            | sticky best-effort boolean publishing nothing else  | `load` / `store` |
//! | `read-after-join` | read forced after writers joined (torn-read tolerant)| `load`          |
//!
//! A `Relaxed` **store** tagged anything but `flag` is cross-thread
//! publication without a release fence — the exact bug class the executor's
//! hand-over discipline forbids — and is rejected. `Relaxed` on
//! `swap`/`compare_exchange*` is always rejected (those exist to
//! synchronize). Non-`Relaxed` sites are inventoried for the report but
//! never violations: stronger-than-needed ordering is a performance
//! question, not a correctness one.

use std::path::Path;

use crate::audit::{PassOutcome, SourceFile, Violation};

/// The `relaxed(<class>)` tags the audit accepts, with the operations each
/// class may justify.
const CLASSES: &[(&str, &[Op])] = &[
    ("counter", &[Op::Rmw]),
    ("cursor", &[Op::Rmw]),
    ("unique-id", &[Op::Rmw]),
    ("flag", &[Op::Load, Op::Store]),
    ("read-after-join", &[Op::Load]),
];

/// The kind of atomic operation consuming an `Ordering` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Load,
    Store,
    Rmw,
    Exchange,
    Unknown,
}

impl Op {
    fn describe(self) -> &'static str {
        match self {
            Op::Load => "load",
            Op::Store => "store",
            Op::Rmw => "read-modify-write",
            Op::Exchange => "swap/compare-exchange",
            Op::Unknown => "unrecognized operation",
        }
    }
}

/// One audited `Ordering::*` site (the pass inventory).
#[derive(Debug)]
pub(crate) struct Site {
    /// Root-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The ordering name (`Relaxed`, `Acquire`, …).
    pub ordering: String,
    /// The consuming operation.
    op: Op,
    /// The `relaxed(<class>)` tag found in the comment window, if any.
    pub class: Option<String>,
}

impl Site {
    /// One inventory line for the CLI report.
    pub(crate) fn describe(&self) -> String {
        format!(
            "{}:{}: {} {} [{}]",
            self.path,
            self.line,
            self.ordering,
            self.op.describe(),
            self.class.as_deref().unwrap_or("-"),
        )
    }
}

/// Recovers the operation that consumes the ordering at `pos`: the last
/// atomic method name between the start of the statement and the site.
/// (`compare_exchange(…, Ordering::SeqCst, Ordering::Relaxed)` resolves
/// both ordering arguments to the same call.)
fn op_before(code: &str, pos: usize) -> Op {
    let stmt_start = code[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let window = &code[stmt_start..pos];
    const METHODS: &[(&str, Op)] = &[
        ("compare_exchange_weak", Op::Exchange),
        ("compare_exchange", Op::Exchange),
        ("swap", Op::Exchange),
        ("fetch_update", Op::Exchange),
        ("load", Op::Load),
        ("store", Op::Store),
        ("fetch_add", Op::Rmw),
        ("fetch_sub", Op::Rmw),
        ("fetch_and", Op::Rmw),
        ("fetch_or", Op::Rmw),
        ("fetch_xor", Op::Rmw),
        ("fetch_nand", Op::Rmw),
        ("fetch_max", Op::Rmw),
        ("fetch_min", Op::Rmw),
    ];
    let mut best: Option<(usize, Op)> = None;
    for &(name, op) in METHODS {
        let needle = format!(".{name}");
        if let Some(p) = window.rfind(&needle) {
            // Longest-name-first table order breaks ties at equal positions
            // (`.compare_exchange_weak` vs `.compare_exchange`).
            if best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, op));
            }
        }
    }
    best.map_or(Op::Unknown, |(_, op)| op)
}

/// Audits one parsed file: returns the site inventory and any violations.
pub(crate) fn audit_file(file: &SourceFile) -> (Vec<Site>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    if !file.is_library() {
        return (sites, violations);
    }
    let code = &file.code;

    for (pos, _) in code.match_indices("Ordering::") {
        if file.in_test(pos) {
            continue;
        }
        let after = &code[pos + "Ordering::".len()..];
        let ordering: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"].contains(&ordering.as_str()) {
            continue;
        }
        let line = file.line_of(pos);
        let op = op_before(code, pos);
        let class = file.tag("relaxed", line);
        let mut push = |msg: String| {
            violations.push(file.violation("atomics-audit", pos, msg));
        };
        if ordering == "Relaxed" {
            match &class {
                None => push(
                    "`Ordering::Relaxed` without a `relaxed(<class>)` tag — classify it as \
                     counter, cursor, unique-id, flag or read-after-join in the comment"
                        .to_string(),
                ),
                Some(class) => match CLASSES.iter().find(|(name, _)| name == class) {
                    None => push(format!(
                        "unknown relaxed class `{class}` — use counter, cursor, unique-id, \
                         flag or read-after-join"
                    )),
                    Some((_, legal_ops)) => {
                        if op == Op::Exchange {
                            push(
                                "`Ordering::Relaxed` on swap/compare-exchange — these \
                                 operations exist to synchronize; use AcqRel or SeqCst"
                                    .to_string(),
                            );
                        } else if !legal_ops.contains(&op) {
                            push(format!(
                                "relaxed class `{class}` does not justify a {}{}",
                                op.describe(),
                                if op == Op::Store {
                                    " — a Relaxed store is cross-thread publication unless \
                                     the value is a self-contained flag"
                                } else {
                                    ""
                                }
                            ));
                        }
                    }
                },
            }
        }
        sites.push(Site {
            path: file.rel.clone(),
            line,
            ordering,
            op,
            class,
        });
    }
    (sites, violations)
}

/// Audits the whole parsed tree.
pub(crate) fn run(_root: &Path, sources: &[SourceFile]) -> PassOutcome {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for file in sources {
        let (s, v) = audit_file(file);
        sites.extend(s.iter().map(Site::describe));
        violations.extend(v);
    }
    PassOutcome {
        pass: "atomics",
        sites,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn audit(rel: &str, src: &str) -> (Vec<Site>, Vec<Violation>) {
        audit_file(&SourceFile::parse(rel, src))
    }

    #[test]
    fn tagged_counter_rmw_is_clean() {
        let src = "fn f(c: &AtomicU64) {\n // relaxed(counter): independent statistic.\n c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let (sites, violations) = audit(LIB, src);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].class.as_deref(), Some("counter"));
    }

    #[test]
    fn untagged_relaxed_is_flagged() {
        let src =
            "fn f(c: &AtomicU64) {\n // relaxed is fine here, trust me.\n c.load(Ordering::Relaxed);\n}\n";
        let (_, violations) = audit(LIB, src);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].msg.contains("relaxed(<class>)"),
            "{violations:?}"
        );
    }

    #[test]
    fn relaxed_store_needs_the_flag_class() {
        let bad = "fn f(c: &AtomicU64) {\n // relaxed(counter): wat.\n c.store(1, Ordering::Relaxed);\n}\n";
        let (_, violations) = audit(LIB, bad);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].msg.contains("cross-thread publication"),
            "{violations:?}"
        );

        let good = "fn f(c: &AtomicBool) {\n // relaxed(flag): sticky best-effort bit.\n c.store(true, Ordering::Relaxed);\n}\n";
        assert!(audit(LIB, good).1.is_empty());
    }

    #[test]
    fn relaxed_compare_exchange_is_always_rejected() {
        let src = "fn f(c: &AtomicU64) {\n // relaxed(cursor): racing claim.\n let _ = c.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n}\n";
        let (sites, violations) = audit(LIB, src);
        assert_eq!(sites.len(), 2, "both ordering args are sites");
        assert_eq!(violations.len(), 2);
        assert!(violations[0].msg.contains("swap/compare-exchange"));
    }

    #[test]
    fn unknown_class_is_flagged() {
        let src = "fn f(c: &AtomicU64) {\n // relaxed(vibes): it felt right.\n c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let (_, violations) = audit(LIB, src);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].msg.contains("unknown relaxed class `vibes`"));
    }

    #[test]
    fn read_after_join_justifies_loads_only() {
        let load = "fn f(c: &AtomicU64) -> u64 {\n // relaxed(read-after-join): workers joined above.\n c.load(Ordering::Relaxed)\n}\n";
        assert!(audit(LIB, load).1.is_empty());
        let rmw = "fn f(c: &AtomicU64) {\n // relaxed(read-after-join): nope.\n c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert_eq!(audit(LIB, rmw).1.len(), 1);
    }

    #[test]
    fn stronger_orderings_are_inventory_not_violations() {
        let src = "fn f(c: &AtomicBool) {\n c.store(true, Ordering::Release);\n c.load(Ordering::Acquire);\n}\n";
        let (sites, violations) = audit(LIB, src);
        assert!(violations.is_empty());
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].ordering, "Release");
    }

    #[test]
    fn test_code_and_non_library_paths_are_exempt() {
        let src = "#[cfg(test)]\nmod t {\n fn g(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(audit(LIB, src).1.is_empty());
        let bare = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        assert!(audit("crates/demo/tests/t.rs", bare).1.is_empty());
    }

    #[test]
    fn ordering_in_strings_and_comments_is_ignored() {
        let src =
            "// Ordering::Relaxed in prose.\nfn f() -> &'static str { \"Ordering::Relaxed\" }\n";
        let (sites, violations) = audit(LIB, src);
        assert!(sites.is_empty() && violations.is_empty());
    }
}
