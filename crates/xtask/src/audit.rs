//! The shared audit core: the source model, suppression-tag grammar, ratchet
//! baseline and JSON reporting that every `xtask` analysis pass builds on.
//!
//! PRs 1 and 3 grew three bespoke scanners (`lint`, `layers`, `atomics`) that
//! each re-implemented the same plumbing: walk the tree, mask comments and
//! literals out of the code view, find `#[cfg(test)]` regions, map byte
//! offsets to line numbers, and print `path:line` diagnostics. This module
//! extracts that plumbing once, and adds the three pieces a growing pass
//! catalogue needs (DESIGN.md §12 "The audit framework"):
//!
//! * **[`SourceFile`]** — one parsed source file: raw text, a code view and a
//!   comment view of identical shape, line starts, test regions, and
//!   line/column span helpers. Passes consume `&[SourceFile]`, so the tree
//!   is read and masked exactly once per `audit` run.
//! * **Suppression tags** — the machine-readable justification grammar
//!   `<tag>(<payload>)` in a comment on the same line as the flagged site or
//!   up to three lines above it. `relaxed(<class>)` (atomics),
//!   `cast(<why>)` (casts) and `panics(<invariant>)` (panics) all parse
//!   through [`SourceFile::tag`].
//! * **Ratchet baseline** — `crates/xtask/audit-baseline.txt` pins the
//!   accepted violation count per pass. Counts may only shrink: a run above
//!   its baseline fails, and a run *below* it fails too until the baseline
//!   is lowered (the same only-shrinks discipline as the lint allowlist).
//! * **JSON report** — [`render_report`] serializes every pass's inventory
//!   and violations to a dependency-free `audit-report/v1` document for CI
//!   artifacts (`--json <path>`).

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One policy violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Violation {
    /// Rule identifier, e.g. `no-unwrap` (the allowlist keys on it).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line); 1 when unknown.
    pub col: usize,
    /// Human-oriented explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.msg
        )
    }
}

/// The lexical classes a source byte can belong to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Code,
    Comment,
    Literal,
}

/// Splits `src` into a code view and a comment view: each output has the same
/// length and line structure as `src`, with bytes of the other classes
/// blanked out. Handles line/block (nested) comments, string/char/byte
/// literals and raw strings.
pub(crate) fn mask_source(src: &str) -> (String, String) {
    let bytes = src.as_bytes();
    let mut class = vec![Class::Code; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    class[i] = Class::Comment;
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        class[i] = Class::Comment;
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"..."  r#"..."#  br##"..."## — find the hash count, then
                // scan for the closing quote + hashes.
                let start = i;
                let mut j = i;
                while bytes.get(j) == Some(&b'r') || bytes.get(j) == Some(&b'b') {
                    j += 1;
                }
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&b'"') => {
                            let mut h = 0;
                            while h < hashes && bytes.get(j + 1 + h) == Some(&b'#') {
                                h += 1;
                            }
                            if h == hashes {
                                j += 1 + hashes;
                                break;
                            }
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                for c in class.iter_mut().take(j.min(bytes.len())).skip(start) {
                    *c = Class::Literal;
                }
                i = j;
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                for c in class.iter_mut().take(i.min(bytes.len())).skip(start) {
                    *c = Class::Literal;
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: a literal closes within a few
                // bytes ('x', '\n', '\u{1F600}'); a lifetime never closes.
                if let Some(end) = char_literal_end(bytes, i) {
                    for c in class.iter_mut().take(end).skip(i) {
                        *c = Class::Literal;
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Blanked characters become one space PER BYTE, so the views keep the
    // exact byte length and offsets of `src` — spans computed on a view
    // index directly into the original (multi-byte chars in comments used
    // to shift every downstream line/column until this held).
    let project = |keep: Class| -> String {
        let mut out = String::with_capacity(src.len());
        for (pos, ch) in src.char_indices() {
            if ch == '\n' || class[pos] == keep {
                out.push(ch);
            } else {
                for _ in 0..ch.len_utf8() {
                    out.push(' ');
                }
            }
        }
        out
    };
    (project(Class::Code), project(Class::Comment))
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r" r# b" (byte string) br" br# — but not a plain identifier like `rank`.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    let mut saw_r = false;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        saw_r = true;
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    match bytes.get(j) {
        Some(&b'"') => saw_r || bytes[i] == b'b',
        _ => false,
    }
}

fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    // `i` points at the opening quote. Returns the index one past the
    // closing quote for a genuine char literal, `None` for a lifetime.
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
        // Escapes like \u{..} or \x41 extend further; scan to the quote.
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1);
    }
    // A literal holds exactly one char (possibly multi-byte UTF-8).
    while j < bytes.len() && j <= i + 5 {
        if bytes[j] == b'\'' {
            return (j > i + 1).then_some(j + 1);
        }
        if bytes[j] == b'\n' {
            return None;
        }
        j += 1;
    }
    None
}

/// Byte ranges of items gated behind `#[cfg(test)]` in the masked code view.
pub(crate) fn test_regions(code: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let bytes = code.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(ATTR).map(|p| p + from) {
        let mut j = pos + ATTR.len();
        // Skip whitespace and any further attributes on the same item.
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') && bytes.get(j + 1) == Some(&b'[') {
                let mut depth = 0;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // The gated item ends at the first `;` at brace depth 0 (use decl,
        // const) or at the matching `}` of its first brace block.
        let mut depth = 0usize;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((pos, end));
        from = end.max(pos + ATTR.len());
    }
    regions
}

pub(crate) fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(a, b)| pos >= a && pos < b)
}

pub(crate) fn line_of(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(n) => n + 1,
        Err(n) => n,
    }
}

/// Occurrences of `needle` in `hay` that sit on identifier boundaries.
pub(crate) fn find_tokens(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle).map(|p| p + from) {
        let before_ok = pos == 0 || {
            let b = bytes[pos - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = pos + needle.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// Start of the statement containing `pos`: scans backward over balanced
/// `()`/`[]`/`{}` groups (so a `;` inside a closure body or struct literal
/// does not end the walk early) until an unmatched opener or a top-level
/// `;`/`,` is found. Returns the byte offset just past that boundary.
pub(crate) fn stmt_start(code: &str, pos: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut i = pos;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b')' | b']' | b'}' => depth += 1,
            b'(' | b'[' | b'{' => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            b';' | b',' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    0
}

/// End of the statement containing `pos`: scans forward over balanced
/// groups until a top-level `;` (returned inclusive) or the closer of the
/// enclosing block (returned exclusive — tail expressions end there).
pub(crate) fn stmt_end(code: &str, pos: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut i = pos;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' | b',' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// End of the block enclosing `pos`: scans forward over balanced groups to
/// the first unmatched `}`. Used for the lexical scope of a `let`-bound
/// guard (it lives to the end of its block unless dropped earlier).
pub(crate) fn block_end(code: &str, pos: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut i = pos;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Whether `rel` is library code for the unwrap/panic/relaxed/cast rules: any
/// `src/` file of a crate or the suite (binaries included — they ship).
/// `tests/`, `benches/` and `examples/` are exempt by policy.
pub(crate) fn is_library_path(rel: &str) -> bool {
    let exempt = ["tests/", "benches/", "examples/"];
    if exempt
        .iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
    {
        return false;
    }
    rel.starts_with("src/") || rel.contains("/src/")
}

/// Whether `rel` is demo code: `examples/` and `src/bin/` binaries. The
/// `lint` pass applies a relaxed rule set here — `.unwrap()` is acceptable
/// in a binary that aborts on bad input, but `todo!`/`dbg!` stay banned and
/// atomics still need a justifying comment. Other passes keep their own
/// scoping (`src/bin/` remains library code for casts/panics/errors).
pub(crate) fn is_demo_path(rel: &str) -> bool {
    let demo = ["examples/", "src/bin/"];
    demo.iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
}

/// How many lines above a site the tag/justification comment window extends
/// (same line or up to this many lines above).
pub(crate) const TAG_WINDOW: usize = 3;

/// One parsed source file — the audit framework's source model. Built once
/// per file and shared by every pass.
pub(crate) struct SourceFile {
    /// Workspace-root-relative path with `/` separators.
    pub rel: String,
    /// Code view: comments and literals blanked, shape preserved.
    pub code: String,
    /// Comment view: everything but comments blanked, shape preserved.
    pub comments: String,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]`-gated items in the code view.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Parses one file. `rel` must be root-relative with `/` separators.
    pub(crate) fn parse(rel: &str, src: &str) -> Self {
        let (code, comments) = mask_source(src);
        let test_regions = test_regions(&code);
        let mut line_starts = vec![0usize];
        line_starts.extend(src.match_indices('\n').map(|(p, _)| p + 1));
        Self {
            rel: rel.to_string(),
            code,
            comments,
            line_starts,
            test_regions,
        }
    }

    /// 1-based line of a byte offset.
    pub(crate) fn line_of(&self, pos: usize) -> usize {
        line_of(&self.line_starts, pos)
    }

    /// 1-based column (byte offset within the line) of a byte offset.
    pub(crate) fn col_of(&self, pos: usize) -> usize {
        let line = self.line_of(pos);
        pos - self.line_starts[line - 1] + 1
    }

    /// Whether `pos` falls inside a `#[cfg(test)]`-gated item.
    pub(crate) fn in_test(&self, pos: usize) -> bool {
        in_regions(&self.test_regions, pos)
    }

    /// The test regions, for passes that walk the code view directly.
    pub(crate) fn test_regions(&self) -> &[(usize, usize)] {
        &self.test_regions
    }

    /// Whether this file is library code (ships; strictest rules apply).
    pub(crate) fn is_library(&self) -> bool {
        is_library_path(&self.rel)
    }

    /// Whether this file is demo code (examples and `src/bin/` binaries).
    pub(crate) fn is_demo(&self) -> bool {
        is_demo_path(&self.rel)
    }

    /// A [`Violation`] at byte offset `pos` in this file.
    pub(crate) fn violation(&self, rule: &'static str, pos: usize, msg: String) -> Violation {
        Violation {
            rule,
            path: self.rel.clone(),
            line: self.line_of(pos),
            col: self.col_of(pos),
            msg,
        }
    }

    /// Extracts the payload of a `<name>(<payload>)` suppression tag from the
    /// comment window around 1-based `line`: the same line or up to
    /// [`TAG_WINDOW`] lines above. Matching is case-insensitive on the tag
    /// name; the payload is returned trimmed, in original case.
    pub(crate) fn tag(&self, name: &str, line: usize) -> Option<String> {
        let needle = format!("{}(", name.to_ascii_lowercase());
        for n in (line.saturating_sub(TAG_WINDOW + 1)..line).rev() {
            let Some(comment) = self.comments.split('\n').nth(n) else {
                continue;
            };
            let lower = comment.to_ascii_lowercase();
            if let Some(open) = lower.find(&needle) {
                let start = open + needle.len();
                let rest = &comment[start..];
                if let Some(close) = rest.find(')') {
                    return Some(rest[..close].trim().to_string());
                }
            }
        }
        None
    }
}

/// Recursively collects the workspace's `.rs` files, root-relative.
pub(crate) fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: &[&str] = &["target", ".git", "results", ".claude", "fixtures"];
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Reads and parses the whole tree under `root` into [`SourceFile`]s.
pub(crate) fn load_tree(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.push(SourceFile::parse(&rel, &src));
    }
    Ok(out)
}

/// The result of one analysis pass over the tree: its inventory (one
/// human-oriented line per audited site) and its violations.
pub(crate) struct PassOutcome {
    /// Pass name as the CLI and the baseline file know it.
    pub pass: &'static str,
    /// One line per audited site (may be empty for violation-only passes).
    pub sites: Vec<String>,
    /// Violations found.
    pub violations: Vec<Violation>,
}

// ---------------------------------------------------------------------------
// Ratchet baseline
// ---------------------------------------------------------------------------

/// Root-relative path of the committed ratchet baseline.
pub(crate) const BASELINE_PATH: &str = "crates/xtask/audit-baseline.txt";

/// The committed per-pass violation budget. Counts may only shrink.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct Baseline(BTreeMap<String, usize>);

impl Baseline {
    /// The budget for `pass` (absent passes have budget 0 — new passes start
    /// strict and the baseline only ever records debt, never headroom).
    pub(crate) fn budget(&self, pass: &str) -> usize {
        self.0.get(pass).copied().unwrap_or(0)
    }
}

/// Parses `pass count` lines; `#` comments and blank lines are skipped.
pub(crate) fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut map = BTreeMap::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((pass, count)) = line.split_once(char::is_whitespace) else {
            return Err(format!("{BASELINE_PATH}:{}: expected `pass count`", n + 1));
        };
        let count: usize = count
            .trim()
            .parse()
            .map_err(|e| format!("{BASELINE_PATH}:{}: bad count: {e}", n + 1))?;
        if map.insert(pass.to_string(), count).is_some() {
            return Err(format!(
                "{BASELINE_PATH}:{}: duplicate pass `{pass}`",
                n + 1
            ));
        }
    }
    Ok(Baseline(map))
}

/// Loads the committed baseline under `root` (absent file = all-zero budgets).
pub(crate) fn load_baseline(root: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(root.join(BASELINE_PATH)) {
        Ok(text) => parse_baseline(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("{BASELINE_PATH}: {e}")),
    }
}

/// Enforces the ratchet for one pass: a violation count above the budget
/// fails outright, and a count *below* it fails until the baseline is
/// lowered, so recorded debt can never silently regrow. Returns the ratchet
/// violations to append to the pass's own.
pub(crate) fn ratchet(baseline: &Baseline, pass: &'static str, count: usize) -> Vec<Violation> {
    let budget = baseline.budget(pass);
    let mut out = Vec::new();
    if count < budget {
        out.push(Violation {
            rule: "ratchet-stale",
            path: BASELINE_PATH.to_string(),
            line: 1,
            col: 1,
            msg: format!(
                "pass `{pass}` now has {count} violation(s) but the baseline still \
                 budgets {budget} — lower the `{pass}` line (the ratchet only tightens)"
            ),
        });
    }
    // Note: `count > budget` is not reported here — the `count - budget`
    // excess violations are already being reported by the pass itself, and
    // the runner fails on them. The ratchet's job is the shrink direction.
    out
}

/// Splits a pass's raw violations into `(tolerated, excess)` under the
/// baseline budget: the first `budget` violations are tolerated (recorded
/// debt), the rest must be fixed. Deterministic because passes emit
/// violations in tree order.
pub(crate) fn apply_budget(
    baseline: &Baseline,
    pass: &str,
    violations: Vec<Violation>,
) -> (Vec<Violation>, Vec<Violation>) {
    let budget = baseline.budget(pass);
    let mut tolerated = violations;
    let excess = tolerated.split_off(budget.min(tolerated.len()));
    (tolerated, excess)
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (u32::from(c)) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes an audit run to the `audit-report/v1` JSON document: per pass,
/// the audited-site inventory, every violation with its span, and the
/// baseline budget in force. Dependency-free by design (xtask must build
/// anywhere the workspace builds).
pub(crate) fn render_report(root: &Path, baseline: &Baseline, passes: &[PassOutcome]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"audit-report/v1\",\n");
    out.push_str(&format!(
        "  \"root\": \"{}\",\n  \"passes\": [\n",
        json_escape(&root.display().to_string())
    ));
    for (i, p) in passes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"pass\": \"{}\",\n", json_escape(p.pass)));
        out.push_str(&format!("      \"sites\": {},\n", p.sites.len()));
        out.push_str(&format!(
            "      \"baseline\": {},\n",
            baseline.budget(p.pass)
        ));
        out.push_str(&format!("      \"violations\": {},\n", p.violations.len()));
        out.push_str("      \"inventory\": [");
        for (j, site) in p.sites.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(site)));
        }
        out.push_str("],\n      \"findings\": [");
        for (j, v) in p.violations.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"msg\": \"{}\"}}",
                json_escape(v.rule),
                json_escape(&v.path),
                v.line,
                v.col,
                json_escape(&v.msg)
            ));
        }
        out.push_str("]\n    }");
        out.push_str(if i + 1 < passes.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_strings_and_comments() {
        let src = "let a = \"x.unwrap()\"; // calls panic!\nlet b = r#\"dbg!(1)\"#;\n";
        let (code, comments) = mask_source(src);
        assert!(!code.contains("unwrap") && !code.contains("panic") && !code.contains("dbg"));
        assert!(comments.contains("panic"));
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (code, _) = mask_source("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(code.contains("'a str"));
        assert!(!code.contains('x') || !code.contains("'x'"));
    }

    #[test]
    fn multibyte_comments_preserve_byte_offsets() {
        // Doc prose in this repo is full of τ, σ, Σ, ≤, —; blanking them
        // must not shift the byte positions of anything that follows.
        let src = "// τ·σ — Σ over D_τ ∪ D_σ\nfn f() { Some(1).unwrap(); }\n";
        let (code, comments) = mask_source(src);
        assert_eq!(code.len(), src.len());
        assert_eq!(comments.len(), src.len());
        let pos = code.find(".unwrap").expect("unwrap is code");
        assert_eq!(pos, src.find(".unwrap").expect("present"), "offsets align");
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert_eq!(f.line_of(pos), 2);
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let (code, _) = mask_source("/* outer /* inner */ still */ fn f() {}\n");
        assert!(!code.contains("inner") && !code.contains("still"));
        assert!(code.contains("fn f"));
    }

    #[test]
    fn source_file_spans_are_one_based() {
        let src = "fn a() {}\nfn bb() {}\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let pos = src.find("bb").expect("bb is in the source");
        assert_eq!(f.line_of(pos), 2);
        assert_eq!(f.col_of(pos), 4);
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.col_of(0), 1);
    }

    #[test]
    fn tag_parses_from_the_window() {
        let src =
            "fn f() {\n    // cast(len fits u32: capped at construction)\n    let x = 1;\n}\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert_eq!(
            f.tag("cast", 3).as_deref(),
            Some("len fits u32: capped at construction")
        );
        // Window: same line or ≤3 above; line 7 is too far from line 2.
        assert_eq!(f.tag("cast", 7), None);
        // Other tag names don't match.
        assert_eq!(f.tag("panics", 3), None);
    }

    #[test]
    fn tag_ignores_code_and_strings() {
        let src = "fn cast(x: u32) {}\nlet s = \"cast(nope)\";\nlet y = 2;\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert_eq!(f.tag("cast", 3), None);
    }

    #[test]
    fn tag_payload_preserves_case_and_trims() {
        let src = "// CAST( Fits: K ≤ MAX_K )\nlet x = 1;\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert_eq!(f.tag("cast", 2).as_deref(), Some("Fits: K ≤ MAX_K"));
    }

    #[test]
    fn baseline_parses_and_defaults_to_zero() {
        let b = parse_baseline("# comment\nlint 3\n\ncasts 0\n").expect("valid");
        assert_eq!(b.budget("lint"), 3);
        assert_eq!(b.budget("casts"), 0);
        assert_eq!(b.budget("panics"), 0, "absent pass defaults to zero");
    }

    #[test]
    fn baseline_rejects_garbage_and_duplicates() {
        assert!(parse_baseline("lint\n").is_err());
        assert!(parse_baseline("lint x\n").is_err());
        assert!(parse_baseline("lint 1\nlint 2\n").is_err());
    }

    #[test]
    fn ratchet_flags_only_the_stale_direction() {
        let b = parse_baseline("casts 2\n").expect("valid");
        assert!(ratchet(&b, "casts", 2).is_empty(), "at budget: fine");
        assert!(
            ratchet(&b, "casts", 3).is_empty(),
            "above budget: the excess violations themselves fail the run"
        );
        let stale = ratchet(&b, "casts", 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "ratchet-stale");
        assert!(stale[0].msg.contains("lower the `casts` line"));
    }

    #[test]
    fn budget_tolerates_exactly_the_recorded_debt() {
        let b = parse_baseline("casts 1\n").expect("valid");
        let v = |line| Violation {
            rule: "cast-audit",
            path: "crates/demo/src/lib.rs".to_string(),
            line,
            col: 1,
            msg: "x".to_string(),
        };
        let (tolerated, excess) = apply_budget(&b, "casts", vec![v(1), v(2)]);
        assert_eq!(tolerated.len(), 1);
        assert_eq!(excess.len(), 1);
        assert_eq!(excess[0].line, 2, "excess keeps tree order");
        let (tolerated, excess) = apply_budget(&b, "casts", vec![v(1)]);
        assert_eq!((tolerated.len(), excess.len()), (1, 0));
    }

    #[test]
    fn report_is_valid_json_shape() {
        let b = Baseline::default();
        let passes = vec![PassOutcome {
            pass: "casts",
            sites: vec!["a.rs:1:2: u32 -> u64 widening [ok]".to_string()],
            violations: vec![Violation {
                rule: "cast-audit",
                path: "a \"quoted\".rs".to_string(),
                line: 3,
                col: 7,
                msg: "bad\ncast".to_string(),
            }],
        }];
        let json = render_report(Path::new("/tmp/x"), &b, &passes);
        assert!(json.contains("\"schema\": \"audit-report/v1\""));
        assert!(json.contains("\"pass\": \"casts\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("bad\\ncast"));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
