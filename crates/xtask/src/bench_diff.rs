//! `xtask bench-diff` — the bench regression guard.
//!
//! Compares two benchmark documents (`BENCH_*.json` or run-report JSON) and
//! fails when the candidate regresses past configurable thresholds:
//!
//! * **wall-clock** series (`*_ms`, `*_us`, `*seconds`) may grow by at most
//!   `--max-wall-pct` percent (default 10),
//! * **per-candidate cost** series (`*_ns`, `*_ns_per_candidate`) by at most
//!   `--max-ns-pct` percent (default 10),
//! * **occupancy** series (`*occupancy*`, higher is better) may drop by at
//!   most `--max-occupancy-drop` absolute (default 0.05).
//!
//! Matching is structural: both documents are flattened to
//! `path → number` leaves (`skew.auto_join_wall_ms`,
//! `verify[2].merge_ns_per_candidate`, …) and every *guarded* series present
//! in the baseline must exist in the candidate — a disappearing series is a
//! regression too (it would otherwise mask one). Unguarded leaves (counts,
//! thresholds, speedup ratios) and series new in the candidate are ignored,
//! so adding metrics never breaks the guard.
//!
//! `xtask` is dependency-isolated, so this module carries its own minimal
//! JSON reader (objects, arrays, strings, numbers, booleans, null — the
//! subset our reports emit).

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- bench-diff <baseline.json> <candidate.json> \
                     [--max-wall-pct <pct>] [--max-ns-pct <pct>] [--max-occupancy-drop <abs>]";

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough structure to flatten numeric leaves.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, read as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected byte {:?}", char::from(other)))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(fields)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        let hex = self
                            .bytes
                            .get(self.pos..end)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| self.error("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.error("invalid \\u escape"))?;
                        self.pos = end;
                        // Surrogate pairs don't occur in our ASCII reports;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.error("invalid escape")),
                },
                Some(byte) if byte < 0x80 => out.push(char::from(byte)),
                Some(byte) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes
                    // verbatim (the input is a valid &str).
                    let len = match byte {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }
}

/// Parses a JSON document (trailing whitespace allowed, nothing else).
pub(crate) fn parse(text: &str) -> Result<Value, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage after document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Flattening and classification
// ---------------------------------------------------------------------------

/// Flattens every numeric leaf to `(dotted.path[index], value)`.
pub(crate) fn flatten(value: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &Value, path: String, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Num(n) => out.push((path, *n)),
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, format!("{path}[{i}]"), out);
            }
        }
        Value::Obj(fields) => {
            for (key, item) in fields {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(item, child, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Which regression rule guards a series, decided from the leaf key name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Guard {
    /// Wall-clock durations — larger is worse, bounded by `--max-wall-pct`.
    Wall,
    /// Per-candidate verification cost — bounded by `--max-ns-pct`.
    Ns,
    /// Slot occupancy in `[0, 1]` — *smaller* is worse, bounded by
    /// `--max-occupancy-drop`.
    Occupancy,
}

/// Classifies one flattened path; `None` means the leaf is not guarded
/// (counts, ratios, configuration echoes).
pub(crate) fn classify(path: &str) -> Option<Guard> {
    let key = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit())
        .trim_end_matches('[');
    if key.contains("occupancy") {
        return Some(Guard::Occupancy);
    }
    if key.ends_with("_ns") || key.contains("ns_per_candidate") {
        return Some(Guard::Ns);
    }
    if key.ends_with("_ms") || key.ends_with("_us") || key.ends_with("seconds") {
        return Some(Guard::Wall);
    }
    None
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// The thresholds one `bench-diff` run enforces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Thresholds {
    /// Max percentage growth for wall-clock series.
    pub max_wall_pct: f64,
    /// Max percentage growth for per-candidate cost series.
    pub max_ns_pct: f64,
    /// Max absolute drop for occupancy series.
    pub max_occupancy_drop: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            max_wall_pct: 10.0,
            max_ns_pct: 10.0,
            max_occupancy_drop: 0.05,
        }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Regression {
    /// Flattened series path.
    pub path: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Compares `candidate` against `baseline`; returns `(compared, regressions)`
/// where `compared` counts the guarded series present in both documents.
pub(crate) fn compare(
    baseline: &Value,
    candidate: &Value,
    thresholds: &Thresholds,
) -> (usize, Vec<Regression>) {
    let base = flatten(baseline);
    let cand = flatten(candidate);
    let lookup: std::collections::HashMap<&str, f64> =
        cand.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let mut compared = 0;
    let mut regressions = Vec::new();
    for (path, base_value) in &base {
        let Some(guard) = classify(path) else {
            continue;
        };
        let Some(&cand_value) = lookup.get(path.as_str()) else {
            regressions.push(Regression {
                path: path.clone(),
                detail: "guarded series missing from candidate".to_string(),
            });
            continue;
        };
        compared += 1;
        match guard {
            Guard::Wall | Guard::Ns => {
                // Sub-epsilon baselines carry no signal (a 0 → 0.01 ms jump
                // is noise, not a regression) — skip them.
                if *base_value <= 1e-12 {
                    continue;
                }
                let pct = (cand_value - base_value) / base_value * 100.0;
                let limit = if guard == Guard::Wall {
                    thresholds.max_wall_pct
                } else {
                    thresholds.max_ns_pct
                };
                if pct > limit {
                    regressions.push(Regression {
                        path: path.clone(),
                        detail: format!(
                            "{base_value:.6} -> {cand_value:.6} (+{pct:.2}%, limit +{limit}%)"
                        ),
                    });
                }
            }
            Guard::Occupancy => {
                let drop = base_value - cand_value;
                if drop > thresholds.max_occupancy_drop {
                    regressions.push(Regression {
                        path: path.clone(),
                        detail: format!(
                            "{base_value:.4} -> {cand_value:.4} (drop {drop:.4}, limit {})",
                            thresholds.max_occupancy_drop
                        ),
                    });
                }
            }
        }
    }
    (compared, regressions)
}

/// Reads + parses one document, with the file path in any error.
fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The `bench-diff` entry point: parses its own argument tail (it takes two
/// positional paths plus numeric flags, unlike the audit passes).
pub(crate) fn run_cli(args: impl Iterator<Item = String>) -> ExitCode {
    let mut args = args;
    let mut positional = Vec::new();
    let mut thresholds = Thresholds::default();
    while let Some(arg) = args.next() {
        let slot = match arg.as_str() {
            "--max-wall-pct" => &mut thresholds.max_wall_pct,
            "--max-ns-pct" => &mut thresholds.max_ns_pct,
            "--max-occupancy-drop" => &mut thresholds.max_occupancy_drop,
            other => {
                if other.starts_with('-') {
                    eprintln!("xtask bench-diff: unknown flag `{other}`\n{USAGE}");
                    return ExitCode::FAILURE;
                }
                positional.push(other.to_string());
                continue;
            }
        };
        match args.next().map(|v| v.parse::<f64>()) {
            Some(Ok(value)) if value >= 0.0 => *slot = value,
            _ => {
                eprintln!("xtask bench-diff: `{arg}` needs a non-negative number\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let [baseline_path, candidate_path] = positional.as_slice() else {
        eprintln!("xtask bench-diff: expected exactly two input files\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let baseline = match load(Path::new(baseline_path)) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("xtask bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let candidate = match load(Path::new(candidate_path)) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("xtask bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (compared, regressions) = compare(&baseline, &candidate, &thresholds);
    if regressions.is_empty() {
        eprintln!(
            "xtask bench-diff: clean — {compared} guarded series within thresholds \
             (wall +{}%, ns +{}%, occupancy -{})",
            thresholds.max_wall_pct, thresholds.max_ns_pct, thresholds.max_occupancy_drop
        );
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            eprintln!("regression: {r}");
        }
        eprintln!(
            "xtask bench-diff: {} regression(s) across {compared} compared series",
            regressions.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(path: &str, doc: &Value) -> f64 {
        flatten(doc)
            .into_iter()
            .find(|(p, _)| p == path)
            .map(|(_, v)| v)
            .expect("path present")
    }

    #[test]
    fn parses_scalars_and_structures() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null, "e": "x\ny"}}"#)
            .expect("valid json");
        assert_eq!(num("a[1]", &doc), 2.5);
        assert_eq!(num("a[2]", &doc), -300.0);
        let Value::Obj(fields) = &doc else {
            panic!("object root")
        };
        let Value::Obj(inner) = &fields[1].1 else {
            panic!("nested object")
        };
        assert_eq!(inner[0].1, Value::Bool(true));
        assert_eq!(inner[1].1, Value::Null);
        assert_eq!(inner[2].1, Value::Str("x\ny".to_string()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parses_the_committed_bench_document() {
        let root = crate::workspace_root(None);
        let text = std::fs::read_to_string(root.join("BENCH_kernels.json"))
            .expect("committed bench baseline exists");
        let doc = parse(&text).expect("committed baseline parses");
        assert!(num("skew.auto_join_wall_ms", &doc) > 0.0);
        assert!(num("verify[0].merge_ns_per_candidate", &doc) > 0.0);
    }

    #[test]
    fn classification_covers_the_report_key_families() {
        assert_eq!(classify("skew.off_join_wall_ms"), Some(Guard::Wall));
        assert_eq!(classify("end_to_end[0].median_ms"), Some(Guard::Wall));
        assert_eq!(classify("group_kernels.nested_loop_us"), Some(Guard::Wall));
        assert_eq!(classify("skew.auto_seconds"), Some(Guard::Wall));
        assert_eq!(classify("verify[3].scan_ns_per_candidate"), Some(Guard::Ns));
        assert_eq!(
            classify("skew.off_min_slot_occupancy"),
            Some(Guard::Occupancy)
        );
        // Counts, ratios and config echoes are unguarded.
        assert_eq!(classify("verify[0].candidates"), None);
        assert_eq!(classify("headline.speedup"), None);
        assert_eq!(classify("config.trials"), None);
    }

    #[test]
    fn a_document_matches_itself() {
        let root = crate::workspace_root(None);
        let text = std::fs::read_to_string(root.join("BENCH_kernels.json"))
            .expect("committed bench baseline exists");
        let doc = parse(&text).expect("committed baseline parses");
        let (compared, regressions) = compare(&doc, &doc, &Thresholds::default());
        assert!(compared > 10, "the baseline has many guarded series");
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    /// Injects a 20% wall regression into the committed baseline — the guard
    /// must flag exactly that series at the default 10% threshold.
    #[test]
    fn an_injected_wall_regression_fails() {
        let root = crate::workspace_root(None);
        let text = std::fs::read_to_string(root.join("BENCH_kernels.json"))
            .expect("committed bench baseline exists");
        let baseline = parse(&text).expect("committed baseline parses");
        let mut candidate = baseline.clone();
        scale_key(&mut candidate, "auto_join_wall_ms", 1.2);
        let (_, regressions) = compare(&baseline, &candidate, &Thresholds::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].path, "skew.auto_join_wall_ms");
        assert!(regressions[0].detail.contains("+20.00%"), "{regressions:?}");
    }

    #[test]
    fn an_occupancy_drop_fails() {
        let baseline = parse(r#"{"skew": {"auto_min_slot_occupancy": 0.92}}"#).expect("valid json");
        let candidate =
            parse(r#"{"skew": {"auto_min_slot_occupancy": 0.70}}"#).expect("valid json");
        let (compared, regressions) = compare(&baseline, &candidate, &Thresholds::default());
        assert_eq!(compared, 1);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        // The reverse direction (occupancy improved) is not a regression.
        let (_, none) = compare(&candidate, &baseline, &Thresholds::default());
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn a_missing_guarded_series_fails() {
        let baseline = parse(r#"{"a_ms": 5.0, "count": 7}"#).expect("valid json");
        let candidate = parse(r#"{"count": 7}"#).expect("valid json");
        let (_, regressions) = compare(&baseline, &candidate, &Thresholds::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].detail.contains("missing"), "{regressions:?}");
        // New series in the candidate are fine.
        let (_, none) = compare(&candidate, &baseline, &Thresholds::default());
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn thresholds_bound_the_allowed_growth() {
        let baseline = parse(r#"{"wall_ms": 100.0}"#).expect("valid json");
        let candidate = parse(r#"{"wall_ms": 125.0}"#).expect("valid json");
        let strict = Thresholds {
            max_wall_pct: 20.0,
            ..Thresholds::default()
        };
        let lax = Thresholds {
            max_wall_pct: 30.0,
            ..Thresholds::default()
        };
        assert_eq!(compare(&baseline, &candidate, &strict).1.len(), 1);
        assert!(compare(&baseline, &candidate, &lax).1.is_empty());
    }

    #[test]
    fn zero_baselines_are_noise_not_regressions() {
        let baseline = parse(r#"{"wall_ms": 0.0}"#).expect("valid json");
        let candidate = parse(r#"{"wall_ms": 0.02}"#).expect("valid json");
        let (_, regressions) = compare(&baseline, &candidate, &Thresholds::default());
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    /// Multiplies every `Value::Num` under any object key == `key` by
    /// `factor` (recursively).
    fn scale_key(value: &mut Value, key: &str, factor: f64) {
        match value {
            Value::Obj(fields) => {
                for (k, v) in fields {
                    if k == key {
                        if let Value::Num(n) = v {
                            *n *= factor;
                        }
                    }
                    scale_key(v, key, factor);
                }
            }
            Value::Arr(items) => {
                for item in items {
                    scale_key(item, key, factor);
                }
            }
            _ => {}
        }
    }
}
