//! Ratchet-demo fixture: exactly one unjustified hot-path allocation. The
//! `hotalloc` pass scopes by relative path, so this file is staged under a
//! hot name (`crates/core/src/kernels.rs`) inside the fixture tree.
//! Recorded at `hotalloc 1` in this fixture's audit-baseline.txt.

/// The recorded debt: an untagged constructor on a hot path.
pub fn scratch() -> Vec<u64> {
    Vec::new()
}

/// A justified allocation for contrast: inventoried, never a violation.
pub fn labels(n: usize) -> Vec<String> {
    // alloc(fixture: one-time setup buffer, not per-record)
    Vec::with_capacity(n)
}
