//! Ratchet-demo fixture: a mini source tree with known violations, used by
//! the audit framework's tests in `crates/xtask/src/main.rs` to prove the
//! baseline ratchet (recorded debt is tolerated, new debt fails, fixed debt
//! forces the baseline down).
//!
//! Not a workspace member, never compiled; `collect_sources` skips
//! `fixtures` directories, so the workspace tier-1 gates never scan it.

/// Exactly one unjustified truncating cast — the recorded debt in this
/// fixture's `crates/xtask/audit-baseline.txt`.
pub fn narrow(x: u64) -> u32 {
    x as u32
}

/// A justified cast: inventoried by the casts pass, never a violation.
pub fn frac(k: usize) -> f64 {
    // cast(fixture invariant: k ≤ 2^20, exact in f64)
    k as f64
}

/// A value-preserving widening cast: clean without any tag.
pub fn widen(w: u16) -> u64 {
    w as u64
}
