//! Ratchet-demo fixture: exactly one unjustified discarded `Result`.
//! Recorded at `errors 1` in this fixture's audit-baseline.txt.

/// The recorded debt: the removal may fail and nobody will ever know.
pub fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
}

/// A justified discard for contrast: inventoried, never a violation.
pub fn best_effort(path: &std::path::Path) {
    // errors(fixture: best-effort cleanup, nowhere to report)
    let _ = std::fs::remove_file(path);
}
