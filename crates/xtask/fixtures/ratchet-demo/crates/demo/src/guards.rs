//! Ratchet-demo fixture: exactly one unjustified lock site — a guard bound
//! to `_`, which drops immediately and makes the critical section a no-op.
//! Recorded at `locks 1` in this fixture's audit-baseline.txt.

pub struct Counter {
    hits: std::sync::Mutex<u64>,
}

impl Counter {
    /// The recorded debt: the guard is discarded the instant it is taken,
    /// so nothing is actually protected here.
    pub fn touch(&self) {
        let _ = self.hits.lock().expect("fixture mutex poisoned");
    }

    /// A clean named guard for contrast: inventoried, never a violation.
    pub fn bump(&self) {
        let mut hits = self.hits.lock().expect("fixture mutex poisoned");
        *hits += 1;
    }
}
