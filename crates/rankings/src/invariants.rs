//! Runtime invariant checks for the distance and bound kernels.
//!
//! Every check is backed by `debug_assert!`: it vanishes from release builds
//! (the hot join paths pay nothing) but runs in every `cargo test`,
//! property test and figure smoke test, so a filter-soundness regression —
//! the one class of bug that silently *drops result pairs* — trips an
//! assertion long before it corrupts an experiment.
//!
//! The invariants mirror the paper's §3–§4 facts:
//!
//! * a raw Footrule distance between two top-k rankings of equal length `k`
//!   lies in `[0, k·(k+1)]` (the maximum is attained exactly by disjoint
//!   rankings); for mixed lengths `(k_a, k_b)` the coarse bound
//!   `(k_a + k_b) · max(k_a, k_b)` holds term-by-term,
//! * a normalized threshold or distance is a finite value in `[0, 1]`,
//! * every prefix length is in `[1, k]` — a prefix of 0 would break the
//!   prefix-intersection completeness guarantee, one above `k` is
//!   meaningless,
//! * an early-exit verification that reports success must report a distance
//!   within its own threshold.

/// The maximum raw Footrule distance between two top-k rankings of length
/// `k`: attained exactly when the rankings are disjoint, where every item
/// contributes `k − rank` in its own list, summing to `k(k+1)/2` per side.
///
/// Hosted here (rather than in [`crate::distance`], which re-exports it)
/// because the invariant checks below need it and `distance` already calls
/// into this module — keeping the intra-crate import graph acyclic.
#[inline]
pub fn max_raw_distance(k: usize) -> u64 {
    (k as u64) * (k as u64 + 1)
}

/// Checks a raw Footrule distance `d` computed between rankings of lengths
/// `ka` and `kb` against the attainable range (debug builds only).
#[inline]
pub fn check_raw_distance(d: u64, ka: usize, kb: usize) {
    if ka == kb {
        debug_assert!(
            d <= max_raw_distance(ka),
            "Footrule invariant violated: d = {d} > k(k+1) = {} for k = {ka}",
            max_raw_distance(ka)
        );
    } else {
        let bound = (ka as u64 + kb as u64) * (ka.max(kb) as u64);
        debug_assert!(
            d <= bound,
            "Footrule invariant violated: d = {d} > (ka+kb)·max = {bound} for ka = {ka}, kb = {kb}"
        );
    }
}

/// Checks that a normalized threshold/distance is finite and in `[0, 1]`
/// (debug builds only).
#[inline]
pub fn check_normalized(theta: f64) {
    debug_assert!(
        theta.is_finite() && (0.0..=1.0).contains(&theta),
        "normalization invariant violated: {theta} is not a finite value in [0, 1]"
    );
}

/// Checks that a prefix length sits in `[1, k]` (debug builds only).
/// Vacuously true for `k = 0` (empty datasets have no prefixes to emit).
#[inline]
pub fn check_prefix_len(p: usize, k: usize) {
    debug_assert!(
        k == 0 || (1..=k).contains(&p),
        "prefix invariant violated: p = {p} outside [1, k] for k = {k}"
    );
}

/// Checks that an early-exit verification that accepted a pair stayed within
/// its threshold (debug builds only).
#[inline]
pub fn check_within_threshold(d: u64, threshold_raw: u64) {
    debug_assert!(
        d <= threshold_raw,
        "verification invariant violated: accepted d = {d} > threshold {threshold_raw}"
    );
}

/// Checks that a pair slice handed to the merge verification kernel is
/// sorted by strictly ascending item id (debug builds only) — the contract
/// of the item-sorted shadow view behind
/// [`crate::distance::footrule_sorted_within`]. Duplicate items would make
/// the merge under-count missing-item penalties, which is exactly the
/// silent-result-loss class these checks exist for.
#[inline]
pub fn check_item_sorted(pairs: &[(u32, u16)]) {
    debug_assert!(
        pairs.windows(2).all(|w| w[0].0 < w[1].0),
        "merge invariant violated: pair slice is not strictly item-sorted"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass() {
        check_raw_distance(0, 5, 5);
        check_raw_distance(30, 5, 5);
        check_raw_distance(2, 3, 2);
        check_normalized(0.0);
        check_normalized(1.0);
        check_prefix_len(1, 10);
        check_prefix_len(10, 10);
        check_prefix_len(0, 0);
        check_within_threshold(6, 6);
        check_item_sorted(&[]);
        check_item_sorted(&[(3, 0)]);
        check_item_sorted(&[(1, 4), (2, 0), (9, 1)]);
    }

    #[test]
    #[should_panic(expected = "merge invariant")]
    fn unsorted_pairs_trip() {
        check_item_sorted(&[(2, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "merge invariant")]
    fn duplicate_items_trip() {
        check_item_sorted(&[(1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "Footrule invariant")]
    fn distance_above_max_trips() {
        check_raw_distance(31, 5, 5);
    }

    #[test]
    #[should_panic(expected = "normalization invariant")]
    fn threshold_above_one_trips() {
        check_normalized(1.5);
    }

    #[test]
    #[should_panic(expected = "prefix invariant")]
    fn zero_prefix_trips() {
        check_prefix_len(0, 10);
    }

    #[test]
    #[should_panic(expected = "verification invariant")]
    fn accepting_beyond_threshold_trips() {
        check_within_threshold(7, 6);
    }
}
