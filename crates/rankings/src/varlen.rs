//! Bounds for **variable-length** rankings — footnote 1 of the paper: "For
//! handling variable-length rankings, only the length boundaries for the
//! Footrule distance, given a distance threshold, need to be computed."
//!
//! For two rankings of lengths `ka ≤ kb` sharing exactly `o` items, the
//! minimum Footrule distance is attained by putting the `o` shared items at
//! identical top ranks `0..o` (cost 0) and the private items at the
//! remaining ranks:
//!
//! * each private item of the shorter ranking at rank `r` costs `kb − r`
//!   (it is missing from the longer ranking, artificial rank `l = kb`), so
//!   the bottom ranks `o..ka` are forced and optimal,
//! * the private items of the longer ranking fill its remaining ranks
//!   `o..kb`, each costing `|r − ka|`.
//!
//! Specializing to `o = min(ka, kb)` gives the **length filter**: two
//! rankings whose lengths differ by `Δ` are at distance at least
//! `Δ(Δ−1)/2` no matter their content.

/// Minimum raw Footrule distance between rankings of lengths `ka` and `kb`
/// sharing exactly `o` items.
///
/// # Panics
/// Panics if `o > min(ka, kb)`.
pub fn min_distance_given_overlap_var(ka: usize, kb: usize, o: usize) -> u64 {
    let (ka, kb) = if ka <= kb { (ka, kb) } else { (kb, ka) };
    assert!(o <= ka, "overlap cannot exceed the shorter length");
    let mut sum = 0u64;
    // Private items of the shorter ranking at its bottom ranks o..ka.
    for r in o..ka {
        sum += (kb - r) as u64;
    }
    // Private items of the longer ranking at its remaining ranks o..kb.
    for r in o..kb {
        sum += crate::ranking::rank_u64(r).abs_diff(ka as u64);
    }
    sum
}

/// The length filter: the minimum distance implied by the length gap alone
/// (`o = min(ka, kb)`), which simplifies to `Δ(Δ−1)/2` with `Δ = |ka − kb|`.
pub fn min_distance_given_lengths(ka: usize, kb: usize) -> u64 {
    let delta = ka.abs_diff(kb) as u64;
    delta * (delta.saturating_sub(1)) / 2
}

/// The minimum overlap two rankings of lengths `ka`, `kb` must share to
/// possibly be within raw distance `theta_raw`: the smallest `o` with
/// [`min_distance_given_overlap_var`]`(ka, kb, o) ≤ theta_raw`, or `None`
/// if even full overlap exceeds the threshold... full overlap is the
/// maximum `o = min(ka, kb)`, whose distance is the length-gap bound; if
/// that exceeds `theta_raw` no pair of these lengths can qualify.
pub fn min_overlap_var(ka: usize, kb: usize, theta_raw: u64) -> Option<usize> {
    let max_o = ka.min(kb);
    if min_distance_given_overlap_var(ka, kb, max_o) > theta_raw {
        return None;
    }
    // min_distance is non-increasing in o; binary search the boundary.
    let mut lo = 0usize; // candidate answers in (lo, hi]; lo may be invalid
    let mut hi = max_o;
    if min_distance_given_overlap_var(ka, kb, 0) <= theta_raw {
        return Some(0);
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if min_distance_given_overlap_var(ka, kb, mid) <= theta_raw {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The prefix length a ranking of length `k` must index so that no pair
/// with any partner length in `partner_lengths` is missed at `theta_raw`.
///
/// For a pair `(ka, kb)` sharing `ω(ka, kb)` items, prefix-filter
/// completeness requires each side's prefix to be at least
/// `k_side − ω + 1` long; taking the minimum required ω over all partner
/// lengths makes one prefix per ranking length sufficient for the whole
/// dataset. Lengths whose pairs cannot qualify at all are skipped; if no
/// partner length can qualify the ranking still indexes one token (itself
/// harmless).
pub fn prefix_len_var(k: usize, partner_lengths: &[usize], theta_raw: u64) -> usize {
    let mut prefix = 1usize;
    for &kb in partner_lengths {
        match min_overlap_var(k, kb, theta_raw) {
            Some(0) => return k, // disjoint pairs qualify: index everything
            Some(omega) => prefix = prefix.max(k - omega.min(k) + 1),
            None => {}
        }
    }
    prefix.min(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::footrule_raw;
    use crate::Ranking;

    #[test]
    fn equal_lengths_match_the_fixed_k_bound() {
        for k in [1usize, 3, 5, 10] {
            for o in 0..=k {
                assert_eq!(
                    min_distance_given_overlap_var(k, k, o),
                    crate::bounds::min_distance_given_overlap(k, o),
                    "k = {k}, o = {o}"
                );
            }
        }
    }

    #[test]
    fn bound_is_symmetric_in_lengths() {
        for (ka, kb) in [(3, 7), (5, 5), (1, 10), (4, 6)] {
            for o in 0..=ka.min(kb) {
                assert_eq!(
                    min_distance_given_overlap_var(ka, kb, o),
                    min_distance_given_overlap_var(kb, ka, o)
                );
            }
        }
    }

    #[test]
    fn length_gap_bound_examples() {
        // Same length: 0. Gap 1: 0 (b's extra item can sit at rank ka,
        // costing 0). Gap 2: 1. Gap 3: 3.
        assert_eq!(min_distance_given_lengths(5, 5), 0);
        assert_eq!(min_distance_given_lengths(5, 6), 0);
        assert_eq!(min_distance_given_lengths(5, 7), 1);
        assert_eq!(min_distance_given_lengths(5, 8), 3);
        assert_eq!(
            min_distance_given_lengths(5, 8),
            min_distance_given_overlap_var(5, 8, 5)
        );
    }

    #[test]
    fn bound_is_achievable() {
        // ka = 3 ⊂ kb = 5 with matching top ranks attains the o = 3 bound.
        let a = Ranking::new(1, vec![1, 2, 3]).unwrap();
        let b = Ranking::new(2, vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(
            footrule_raw(&a, &b),
            min_distance_given_overlap_var(3, 5, 3)
        );
        // Disjoint rankings attain the o = 0 bound.
        let c = Ranking::new(3, vec![7, 8, 9]).unwrap();
        let d = Ranking::new(4, vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(
            footrule_raw(&c, &d),
            min_distance_given_overlap_var(3, 5, 0)
        );
    }

    #[test]
    fn bound_is_sound_exhaustively() {
        // For every pair of small rankings over a small universe, the true
        // distance is at least the bound for the observed overlap.
        let universe: Vec<u32> = (0..6).collect();
        let mut rankings = Vec::new();
        let mut id = 0u64;
        // All permutations of all subsets of sizes 2 and 3.
        for a in 0..universe.len() {
            for b in 0..universe.len() {
                if a == b {
                    continue;
                }
                rankings.push(Ranking::new(id, vec![universe[a], universe[b]]).unwrap());
                id += 1;
                for c in 0..universe.len() {
                    if c == a || c == b {
                        continue;
                    }
                    rankings.push(
                        Ranking::new(id, vec![universe[a], universe[b], universe[c]]).unwrap(),
                    );
                    id += 1;
                }
            }
        }
        for x in rankings.iter().step_by(3) {
            for y in rankings.iter().step_by(7) {
                let o = x.overlap(y);
                let d = footrule_raw(x, y);
                let bound = min_distance_given_overlap_var(x.k(), y.k(), o);
                assert!(d >= bound, "{x} vs {y}: d = {d} < bound {bound} (o = {o})");
            }
        }
    }

    #[test]
    fn min_overlap_var_boundary() {
        // k = 5 vs 5, θ = 0: full overlap required.
        assert_eq!(min_overlap_var(5, 5, 0), Some(5));
        // θ = max: no overlap required.
        assert_eq!(min_overlap_var(5, 5, 30), Some(0));
        // Lengths 3 vs 8: even identical-domain pairs cost ≥ 10? Gap bound:
        // Δ = 5 → 10. θ = 9 ⇒ impossible.
        assert_eq!(min_distance_given_lengths(3, 8), 10);
        assert_eq!(min_overlap_var(3, 8, 9), None);
        assert_eq!(min_overlap_var(3, 8, 10), Some(3));
    }

    #[test]
    fn min_overlap_var_is_the_exact_boundary() {
        for (ka, kb) in [(3usize, 3usize), (3, 5), (5, 9), (10, 10)] {
            for theta_raw in 0..=((ka + kb) * (ka + kb)) as u64 {
                if let Some(omega) = min_overlap_var(ka, kb, theta_raw) {
                    assert!(
                        min_distance_given_overlap_var(ka, kb, omega) <= theta_raw,
                        "ka={ka} kb={kb} θ={theta_raw}: ω={omega} fails"
                    );
                    if omega > 0 {
                        assert!(
                            min_distance_given_overlap_var(ka, kb, omega - 1) > theta_raw,
                            "ka={ka} kb={kb} θ={theta_raw}: ω−1 already qualifies"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_len_var_covers_partner_lengths() {
        // Fixed-length case reduces to the classic formula.
        for theta_raw in [0u64, 5, 11, 22, 44] {
            assert_eq!(
                prefix_len_var(10, &[10], theta_raw),
                crate::bounds::overlap_prefix_len(10, theta_raw)
            );
        }
        // A longer partner loosens the requirement; the prefix covers the
        // loosest (minimum-ω) pairing.
        let p_multi = prefix_len_var(5, &[5, 8, 10], 12);
        let p_single: usize = [5usize, 8, 10]
            .iter()
            .filter_map(|&kb| min_overlap_var(5, kb, 12).map(|w| 5 - w.min(5) + 1))
            .max()
            .unwrap();
        assert_eq!(p_multi, p_single);
        // Unreachable partner lengths are ignored.
        assert_eq!(prefix_len_var(3, &[30], 5), 1);
    }
}
