//! Top-k ranking data model and the mathematical toolkit of
//! *“Distributed Similarity Joins over Top-K Rankings”* (Milchevski & Michel,
//! EDBT 2020).
//!
//! A **top-k ranking** is a fixed-length list of `k` distinct items; the
//! left-most position is the top rank. Following Fagin et al. (and the paper,
//! §3) ranks run from `0` to `k − 1` and an item that is *not* contained in a
//! ranking is assigned the artificial rank `l = k`.
//!
//! The crate provides:
//!
//! * [`Ranking`] / [`OrderedRanking`] — the two ranking representations used
//!   by the join algorithms (original item order vs. canonical
//!   frequency-ordered form with preserved original ranks),
//! * [`distance`] — Spearman's Footrule adaptation for top-k lists (a
//!   metric), raw and normalized, with early-exit verification, plus
//!   Kendall's tau for completeness,
//! * [`bounds`] — every pruning bound of the paper: the overlap prefix, the
//!   ordered prefix of Lemma 4.1, the position filter, the
//!   minimum-distance-given-overlap bound and the posting-list length
//!   estimator (Eq. 4),
//! * [`ordered`] — global frequency ordering (the *Ordering* phase),
//! * [`verify`] — the shared candidate-verification kernels,
//! * [`invariants`] — `debug_assert!`-backed runtime checks wired into the
//!   kernels above (free in release builds, exercised by every test run).
//!
//! # Example
//!
//! ```
//! use topk_rankings::{Ranking, distance};
//!
//! // Table 2 of the paper: two top-5 rankings.
//! let t1 = Ranking::new(1, vec![2, 5, 4, 3, 1]).unwrap();
//! let t2 = Ranking::new(2, vec![1, 4, 5, 9, 0]).unwrap();
//!
//! // With ranks 0..k-1 and the artificial rank l = k = 5 the paper's §1.1
//! // example evaluates to 16.
//! assert_eq!(distance::footrule_raw(&t1, &t2), 16);
//! assert_eq!(distance::max_raw_distance(5), 30);
//! ```

#![warn(missing_docs)]

pub mod bounds;
pub mod distance;
pub mod invariants;
pub mod jaccard;
pub mod ordered;
pub mod ranking;
pub mod varlen;
pub mod verify;

pub use bounds::{
    min_distance_given_overlap, min_overlap, ordered_prefix_len, overlap_prefix_len,
    position_filter_prunes, BoundSummary, PrefixKind,
};
pub use distance::{
    footrule_norm, footrule_pairs, footrule_pairs_within, footrule_raw, footrule_sorted_within,
    footrule_within, max_raw_distance, raw_threshold,
};
pub use jaccard::{jaccard_distance, jaccard_min_overlap, jaccard_prefix_len, jaccard_within};
pub use ordered::{order_dataset, FrequencyTable, OrderedRanking};
pub use ranking::{rank_u64, ItemId, Ranking, RankingError, RankingId, Relation};
pub use verify::{verify_candidate, ResultPair, Verification};
