//! Distance functions for top-k rankings.
//!
//! The paper uses Spearman's Footrule adaptation for top-k lists (Fagin,
//! Kumar, Sivakumar: *Comparing Top k Lists*, SIAM J. Discrete Math. 2003):
//!
//! ```text
//! F(τ, σ) = Σ_{i ∈ D_τ ∪ D_σ} |τ(i) − σ(i)|
//! ```
//!
//! where ranks run from `0` to `k − 1` and items not contained in a ranking
//! receive the artificial rank `l = k`. With both lists of the same size `k`
//! the maximum distance is `k·(k+1)` (two disjoint rankings) and the minimum
//! is `0` (identical rankings). The adaptation is a **metric** — in
//! particular the triangle inequality holds — which is what licenses the
//! clustering algorithm's pruning (paper §5, and property-tested in this
//! crate).

use crate::ranking::{rank_u64, Ranking};

// The formula lives in `invariants` (the lower module — `distance` calls
// into it for checks, so hosting it there keeps the module graph acyclic)
// but is part of this module's public API.
pub use crate::invariants::max_raw_distance;

/// Converts a normalized threshold `θ ∈ [0, 1]` into a raw distance bound for
/// rankings of length `k`, rounding down (a pair is a result iff
/// `raw ≤ raw_threshold`).
///
/// The rounding is **epsilon-robust**: when `θ` is (the f64 parse of) a
/// decimal whose exact product with `k(k+1)` is an integer, the f64 product
/// can land a few ulps *below* that integer — e.g. `0.3 × 110 =
/// 32.999999999999996` — and a bare `floor` would silently drop result pairs
/// sitting at exactly the threshold. Products within a few ulps of an
/// integer snap to it; genuinely fractional products still floor.
#[inline]
pub fn raw_threshold(k: usize, theta: f64) -> u64 {
    crate::invariants::check_normalized(theta);
    // cast(max = k·(k+1) ≤ ~2^33 for k ≤ MAX_K — exact in f64)
    let max = max_raw_distance(k) as f64;
    let scaled = theta * max;
    let nearest = scaled.round();
    // Parse error of a decimal θ is ≤ ½ ulp and the product adds ≤ ½ ulp,
    // so 4 ulps of the maximum distance comfortably covers every "really an
    // integer" case without capturing true fractions (the nearest
    // non-integer rational θ·k(k+1) with a small decimal denominator is
    // orders of magnitude further away).
    if (scaled - nearest).abs() <= max * f64::EPSILON * 4.0 {
        // cast(θ ∈ [0,1] checked above, so this is an integer-valued f64 in [0, max] — exact in u64)
        nearest as u64
    } else {
        // cast(see above — floor of a value in [0, max])
        scaled.floor() as u64
    }
}

/// Raw Footrule distance between two top-k rankings.
///
/// Works for rankings of equal or different lengths; missing items get the
/// artificial rank `l = k` *of the ranking they are missing from*, matching
/// the footnote in §1.1 (for variable-length rankings only the distance
/// bounds change, not the distance itself).
pub fn footrule_raw(a: &Ranking, b: &Ranking) -> u64 {
    let la = a.k() as u64;
    let lb = b.k() as u64;
    let mut sum = 0u64;
    for (item, rank_a) in a.iter_with_ranks() {
        let rank_a = rank_u64(rank_a);
        match b.rank_of(item) {
            Some(rank_b) => sum += rank_a.abs_diff(rank_u64(rank_b)),
            None => sum += rank_a.abs_diff(lb),
        }
    }
    for (item, rank_b) in b.iter_with_ranks() {
        if !a.contains(item) {
            sum += rank_u64(rank_b).abs_diff(la);
        }
    }
    crate::invariants::check_raw_distance(sum, a.k(), b.k());
    sum
}

/// Normalized Footrule distance in `[0, 1]`.
///
/// For rankings of different lengths the normalizer uses the larger `k`,
/// which keeps the value in `[0, 1]`.
pub fn footrule_norm(a: &Ranking, b: &Ranking) -> f64 {
    let k = a.k().max(b.k());
    // cast(raw ≤ max = k·(k+1) ≤ ~2^33 — both sides exact in f64)
    let norm = footrule_raw(a, b) as f64 / max_raw_distance(k) as f64;
    crate::invariants::check_normalized(norm);
    norm
}

/// Early-exit Footrule verification: returns `Some(distance)` iff
/// `F(a, b) ≤ threshold_raw`, bailing out as soon as the partial sum exceeds
/// the threshold. This is the verification kernel of all join algorithms.
pub fn footrule_within(a: &Ranking, b: &Ranking, threshold_raw: u64) -> Option<u64> {
    let lb = b.k() as u64;
    let la = a.k() as u64;
    let mut sum = 0u64;
    for (item, rank_a) in a.iter_with_ranks() {
        let rank_a = rank_u64(rank_a);
        sum += match b.rank_of(item) {
            Some(rank_b) => rank_a.abs_diff(rank_u64(rank_b)),
            None => rank_a.abs_diff(lb),
        };
        if sum > threshold_raw {
            return None;
        }
    }
    for (item, rank_b) in b.iter_with_ranks() {
        if !a.contains(item) {
            sum += rank_u64(rank_b).abs_diff(la);
            if sum > threshold_raw {
                return None;
            }
        }
    }
    crate::invariants::check_within_threshold(sum, threshold_raw);
    crate::invariants::check_raw_distance(sum, a.k(), b.k());
    Some(sum)
}

/// Raw Footrule distance over `(item, original_rank)` pair slices, the
/// representation used by [`crate::ordered::OrderedRanking`].
///
/// Both slices must stem from rankings of length `k_a` resp. `k_b` (i.e. the
/// original ranks are `< k`); the item order within the slices is irrelevant.
pub fn footrule_pairs(a: &[(u32, u16)], b: &[(u32, u16)]) -> u64 {
    footrule_pairs_within(a, b, u64::MAX).expect("u64::MAX threshold never prunes")
}

/// Early-exit variant of [`footrule_pairs`]: `Some(distance)` iff the
/// distance is `≤ threshold_raw`.
///
/// This is the **retained naive scan path** — O(k²) per pair via a linear
/// `find` per item, kept as the order-insensitive reference implementation
/// that the merge fast path ([`footrule_sorted_within`]) is differentially
/// tested against. Hot join code goes through
/// [`crate::ordered::OrderedRanking::footrule_within`] instead, which uses
/// the item-sorted shadow view.
pub fn footrule_pairs_within(
    a: &[(u32, u16)],
    b: &[(u32, u16)],
    threshold_raw: u64,
) -> Option<u64> {
    let la = a.len() as u64;
    let lb = b.len() as u64;
    let mut sum = 0u64;
    for &(item, rank_a) in a {
        let rank_a = u64::from(rank_a);
        sum += match b.iter().find(|(i, _)| *i == item) {
            Some(&(_, rank_b)) => rank_a.abs_diff(u64::from(rank_b)),
            None => rank_a.abs_diff(lb),
        };
        if sum > threshold_raw {
            return None;
        }
    }
    for &(item, rank_b) in b {
        if !a.iter().any(|(i, _)| *i == item) {
            sum += u64::from(rank_b).abs_diff(la);
            if sum > threshold_raw {
                return None;
            }
        }
    }
    crate::invariants::check_within_threshold(sum, threshold_raw);
    crate::invariants::check_raw_distance(sum, a.len(), b.len());
    Some(sum)
}

/// Early-exit Footrule over **item-sorted** `(item, original_rank)` slices —
/// the two-pointer merge fast path behind
/// [`crate::ordered::OrderedRanking::footrule_within`].
///
/// Both slices must be sorted by strictly ascending item id (the shadow view
/// every [`crate::ordered::OrderedRanking`] maintains); the merge classifies
/// every item of the union as shared / missing-from-`b` / missing-from-`a`
/// in one O(k_a + k_b) pass instead of [`footrule_pairs_within`]'s O(k²)
/// scan. The outcome is bit-for-bit the naive path's: partial sums are
/// permutations of the same non-negative terms, so `Some`/`None` and the
/// returned distance agree for every threshold (property-tested in
/// `tests/props.rs` and in this module's differential test).
pub fn footrule_sorted_within(
    a: &[(u32, u16)],
    b: &[(u32, u16)],
    threshold_raw: u64,
) -> Option<u64> {
    crate::invariants::check_item_sorted(a);
    crate::invariants::check_item_sorted(b);
    let la = a.len() as u64;
    let lb = b.len() as u64;
    let mut sum = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        // panics(loop guard: i < a.len() and j < b.len())
        let (item_a, rank_a) = a[i];
        let (item_b, rank_b) = b[j];
        sum += if item_a == item_b {
            i += 1;
            j += 1;
            u64::from(rank_a).abs_diff(u64::from(rank_b))
        } else if item_a < item_b {
            i += 1;
            u64::from(rank_a).abs_diff(lb)
        } else {
            j += 1;
            u64::from(rank_b).abs_diff(la)
        };
        if sum > threshold_raw {
            return None;
        }
    }
    // panics(i only ever incremented while < a.len(), so i ≤ a.len())
    for &(_, rank_a) in &a[i..] {
        sum += u64::from(rank_a).abs_diff(lb);
        if sum > threshold_raw {
            return None;
        }
    }
    // panics(j only ever incremented while < b.len(), so j ≤ b.len())
    for &(_, rank_b) in &b[j..] {
        sum += u64::from(rank_b).abs_diff(la);
        if sum > threshold_raw {
            return None;
        }
    }
    crate::invariants::check_within_threshold(sum, threshold_raw);
    crate::invariants::check_raw_distance(sum, a.len(), b.len());
    Some(sum)
}

/// Kendall's tau adaptation for top-k lists with penalty parameter `p = 0`
/// (the "optimistic" variant `K^(0)` of Fagin et al.).
///
/// Counts discordant pairs over the union of the two domains:
///
/// * both items in both lists → 1 if the relative order differs,
/// * `i, j` in τ but only `i` in σ → 1 if τ ranks `j` ahead of `i`,
/// * `i` only in τ and `j` only in σ → 0 (case 4 of Fagin et al. with
///   `p = 0`; with `p = 1/2` each such pair would contribute `1/2`),
/// * `i, j` both in exactly one list, neither in the other → 1.
///
/// Not used by the join algorithms (the paper's clustering only requires a
/// metric and uses Footrule), but provided because Footrule and Kendall's tau
/// are within constant factors of each other (Diaconis–Graham), which makes
/// this useful for sanity checks and downstream users.
pub fn kendall_tau_topk(a: &Ranking, b: &Ranking) -> u64 {
    // alloc(sanity-check metric, not called by the join algorithms)
    let mut domain: Vec<u32> = a.items().to_vec();
    for &item in b.items() {
        if !a.contains(item) {
            domain.push(item);
        }
    }
    let mut discordant = 0u64;
    for (x, &i) in domain.iter().enumerate() {
        // panics(x < domain.len() from enumerate, so x + 1 ≤ domain.len())
        for &j in &domain[x + 1..] {
            let (ra_i, ra_j) = (a.rank_of(i), a.rank_of(j));
            let (rb_i, rb_j) = (b.rank_of(i), b.rank_of(j));
            discordant += match ((ra_i, ra_j), (rb_i, rb_j)) {
                // Case 1: both pairs ranked in both lists.
                ((Some(ai), Some(aj)), (Some(bi), Some(bj))) => u64::from((ai < aj) != (bi < bj)),
                // Case 2: i,j ∈ a, only one of them ∈ b (or vice versa): the
                // list containing both fixes the order; the other list ranks
                // its present item ahead of the absent one.
                ((Some(ai), Some(aj)), (Some(_), None)) => u64::from(aj < ai),
                ((Some(ai), Some(aj)), (None, Some(_))) => u64::from(ai < aj),
                ((Some(_), None), (Some(bi), Some(bj))) => u64::from(bj < bi),
                ((None, Some(_)), (Some(bi), Some(bj))) => u64::from(bi < bj),
                // Case 3: i appears only in a, j appears only in b (each list
                // ranks its own item ahead) → discordant.
                ((Some(_), None), (None, Some(_))) => 1,
                ((None, Some(_)), (Some(_), None)) => 1,
                // Case 4 (p = 0): i,j together in one list only, no
                // information from the other list → optimistic 0.
                ((Some(_), Some(_)), (None, None)) => 0,
                ((None, None), (Some(_), Some(_))) => 0,
                // Remaining combinations cannot occur for items drawn from
                // the union of the domains.
                _ => 0,
            };
        }
    }
    discordant
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: u64, items: &[u32]) -> Ranking {
        Ranking::new(id, items.to_vec()).unwrap()
    }

    #[test]
    fn paper_intro_example() {
        // §1.1: τ1 = [2,5,4,3,1], τ2 = [1,4,5,9,0], l = 5 (0-based ranks)
        // gives F = 16. (The paper's prose uses 1-based ranks with l = 6 and
        // reaches the same value, as shifting all ranks by one cancels out.)
        let t1 = r(1, &[2, 5, 4, 3, 1]);
        let t2 = r(2, &[1, 4, 5, 9, 0]);
        assert_eq!(footrule_raw(&t1, &t2), 16);
        assert_eq!(footrule_raw(&t2, &t1), 16);
    }

    #[test]
    fn identical_rankings_have_distance_zero() {
        let t = r(1, &[3, 1, 4, 1 + 4, 9]);
        assert_eq!(footrule_raw(&t, &t), 0);
        assert_eq!(footrule_norm(&t, &t), 0.0);
    }

    #[test]
    fn disjoint_rankings_attain_the_maximum() {
        let a = r(1, &[0, 1, 2, 3, 4]);
        let b = r(2, &[10, 11, 12, 13, 14]);
        assert_eq!(footrule_raw(&a, &b), max_raw_distance(5));
        assert_eq!(footrule_norm(&a, &b), 1.0);
    }

    #[test]
    fn single_swap_costs_two() {
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[2, 1, 3, 4, 5]);
        assert_eq!(footrule_raw(&a, &b), 2);
    }

    #[test]
    fn figure_one_example() {
        // Figure 1: same domain, first p = 2 items disjoint, F = 8 = 2p².
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[3, 4, 1, 2, 5]);
        assert_eq!(footrule_raw(&a, &b), 8);
    }

    #[test]
    fn raw_threshold_rounds_down() {
        // k = 10 → max = 110. θ = 0.1 → 11.0 → 11; θ = 0.35 → 38.5 → 38.
        assert_eq!(raw_threshold(10, 0.1), 11);
        assert_eq!(raw_threshold(10, 0.35), 38);
        assert_eq!(raw_threshold(10, 0.0), 0);
        assert_eq!(raw_threshold(10, 1.0), 110);
    }

    #[test]
    fn raw_threshold_snaps_floating_point_near_misses() {
        // The motivating case: 0.3 × 110 = 32.999999999999996 in f64; a bare
        // floor would yield 32 and silently drop pairs at raw distance 33.
        assert_eq!(raw_threshold(10, 0.3), 33);
        // 0.7 × 42 = 29.399999999999999 → genuinely fractional → 29.
        assert_eq!(raw_threshold(6, 0.7), 29);
    }

    /// `raw_threshold` must agree with exact rational arithmetic for every
    /// θ that is a decimal with ≤ 3 fractional digits (the grid every
    /// experiment in the paper and this repo draws from), across the whole
    /// supported k range.
    #[test]
    fn raw_threshold_matches_exact_rational_grid() {
        for k in 5usize..=50 {
            let max = max_raw_distance(k);
            for num in 0u64..=1000 {
                // θ = num/1000, parsed the way a CLI flag or literal would be.
                let theta = num as f64 / 1000.0;
                let exact = (u128::from(num) * u128::from(max) / 1000) as u64;
                assert_eq!(
                    raw_threshold(k, theta),
                    exact,
                    "θ = {num}/1000, k = {k}, max = {max}"
                );
            }
        }
    }

    #[test]
    fn footrule_within_agrees_with_exact() {
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[2, 1, 3, 9, 5]);
        let exact = footrule_raw(&a, &b);
        assert_eq!(footrule_within(&a, &b, exact), Some(exact));
        assert_eq!(footrule_within(&a, &b, exact - 1), None);
        assert_eq!(footrule_within(&a, &b, u64::MAX), Some(exact));
    }

    /// Deterministic differential sweep: the merge fast path must agree with
    /// the retained naive scan on every pair — equal and variable lengths,
    /// scrambled pair order, and all four interesting threshold regimes
    /// (exact distance, exact − 1, 0, `u64::MAX`). The randomized proptest
    /// twin lives in `tests/props.rs`; this one always runs.
    #[test]
    fn merge_path_matches_naive_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for trial in 0..400 {
            let ka = rng.gen_range(1usize..=25);
            let kb = if trial % 3 == 0 {
                ka
            } else {
                rng.gen_range(1usize..=25)
            };
            let universe = rng.gen_range(4u32..40);
            let mut draw = |k: usize| -> Vec<(u32, u16)> {
                let mut items: Vec<u32> = (0..universe + k as u32).collect();
                use rand::seq::SliceRandom;
                items.shuffle(&mut rng);
                items.truncate(k);
                items
                    .into_iter()
                    .enumerate()
                    .map(|(rank, item)| (item, rank as u16))
                    .collect()
            };
            let mut a = draw(ka);
            let mut b = draw(kb);
            // Scramble the scan inputs: the naive path is order-insensitive.
            use rand::seq::SliceRandom;
            a.shuffle(&mut rng);
            b.shuffle(&mut rng);
            let mut a_sorted = a.clone();
            let mut b_sorted = b.clone();
            a_sorted.sort_unstable();
            b_sorted.sort_unstable();
            let exact = footrule_pairs(&a, &b);
            let thresholds = [exact, exact.saturating_sub(1), 0, u64::MAX];
            for &t in &thresholds {
                assert_eq!(
                    footrule_sorted_within(&a_sorted, &b_sorted, t),
                    footrule_pairs_within(&a, &b, t),
                    "trial {trial}: ka = {ka}, kb = {kb}, t = {t}, exact = {exact}"
                );
            }
        }
    }

    #[test]
    fn merge_path_handles_empty_and_disjoint_slices() {
        assert_eq!(footrule_sorted_within(&[], &[], 0), Some(0));
        // Against the empty ranking (l_b = 0) each item contributes its own
        // rank: |0 − 0| + |1 − 0| = 1.
        let a = [(1u32, 0u16), (2, 1)];
        assert_eq!(footrule_sorted_within(&a, &[], u64::MAX), Some(1));
        let b = [(8u32, 0u16), (9, 1)];
        // Disjoint k = 2 rankings attain the maximum 2·3 = 6.
        assert_eq!(footrule_sorted_within(&a, &b, u64::MAX), Some(6));
        assert_eq!(footrule_sorted_within(&a, &b, 5), None);
    }

    #[test]
    fn footrule_pairs_matches_ranking_distance() {
        let a = r(1, &[7, 3, 9, 1, 5]);
        let b = r(2, &[3, 7, 9, 8, 2]);
        let pa: Vec<(u32, u16)> = a
            .iter_with_ranks()
            .map(|(item, rank)| (item, rank as u16))
            .collect();
        // Scramble the pair order: the distance must not depend on it.
        let mut pb: Vec<(u32, u16)> = b
            .iter_with_ranks()
            .map(|(item, rank)| (item, rank as u16))
            .collect();
        pb.reverse();
        assert_eq!(footrule_pairs(&pa, &pb), footrule_raw(&a, &b));
        let exact = footrule_raw(&a, &b);
        assert_eq!(footrule_pairs_within(&pa, &pb, exact - 1), None);
    }

    #[test]
    fn variable_length_rankings_are_supported() {
        // a = [1,2,3] (k=3), b = [1,2] (k=2):
        // item 1: |0-0| = 0; item 2: |1-1| = 0; item 3 missing in b → l_b = 2,
        // contributes |rank_a − l_b| = |2 − 2| = 0. Total 0.
        let a = r(1, &[1, 2, 3]);
        let b = r(2, &[1, 2]);
        assert_eq!(footrule_raw(&a, &b), 0);
        // b = [2,1]: item 1: |0-1| = 1, item 2: |1-0| = 1, item 3: 0 → 2.
        let b2 = r(3, &[2, 1]);
        assert_eq!(footrule_raw(&a, &b2), 2);
    }

    #[test]
    fn kendall_tau_zero_for_identical_and_positive_for_swap() {
        let a = r(1, &[1, 2, 3, 4, 5]);
        assert_eq!(kendall_tau_topk(&a, &a), 0);
        let b = r(2, &[2, 1, 3, 4, 5]);
        assert_eq!(kendall_tau_topk(&a, &b), 1);
    }

    #[test]
    fn kendall_tau_disjoint_lists() {
        // Disjoint lists of size k: every (i from a, j from b) pair is
        // discordant (case 3) → k² discordances; pairs within a single list
        // fall under case 4 and cost 0 with p = 0.
        let a = r(1, &[1, 2]);
        let b = r(2, &[8, 9]);
        assert_eq!(kendall_tau_topk(&a, &b), 4);
    }

    #[test]
    fn diaconis_graham_relation_holds() {
        // F ≤ 2·K for permutations of the same domain (Diaconis–Graham).
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[5, 3, 1, 2, 4]);
        let f = footrule_raw(&a, &b);
        let k = kendall_tau_topk(&a, &b);
        assert!(k <= f && f <= 2 * k, "K = {k}, F = {f}");
    }
}
