//! Shared candidate-verification kernels.
//!
//! Every join algorithm in the paper funnels candidate pairs through the same
//! two steps: the **position filter** on the shared (indexed) item, then the
//! early-exit Footrule computation. Keeping the kernel in one place
//! guarantees that VJ, VJ-NL, CL and CL-P verify identically.

use crate::bounds::position_filter_prunes;
use crate::ordered::OrderedRanking;

/// Outcome of verifying one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// The pair is a join result with the given raw distance.
    Within(u64),
    /// Pruned by the position filter on the shared item (no distance
    /// computation was performed).
    PositionPruned,
    /// The full (early-exit) distance computation exceeded the threshold.
    DistanceExceeded,
}

impl Verification {
    /// The raw distance if the pair qualified.
    #[inline]
    pub fn distance(self) -> Option<u64> {
        match self {
            Verification::Within(d) => Some(d),
            _ => None,
        }
    }
}

/// Verifies a candidate pair that was generated because both rankings
/// contain `shared_item_ranks = (rank_in_a, rank_in_b)` — the original ranks
/// of the inverted-index token that brought them together.
///
/// Applies the position filter first (§4: a shared item with rank difference
/// `> θ/2` certifies the pair is not a result) and only then computes the
/// distance with early exit.
pub fn verify_candidate(
    a: &OrderedRanking,
    b: &OrderedRanking,
    shared_item_ranks: Option<(usize, usize)>,
    theta_raw: u64,
    use_position_filter: bool,
) -> Verification {
    if use_position_filter {
        if let Some((rank_a, rank_b)) = shared_item_ranks {
            if position_filter_prunes(rank_a, rank_b, theta_raw) {
                return Verification::PositionPruned;
            }
        }
    }
    match a.footrule_within(b, theta_raw) {
        Some(d) => Verification::Within(d),
        None => Verification::DistanceExceeded,
    }
}

/// An order-normalized result pair `(smaller_id, larger_id)` with its raw
/// distance. Normalizing at creation time makes the final duplicate
/// elimination a plain `distinct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResultPair {
    /// The smaller ranking id.
    pub a: u64,
    /// The larger ranking id.
    pub b: u64,
    /// Raw Footrule distance.
    pub distance: u64,
}

impl ResultPair {
    /// Builds a normalized pair; `x` and `y` may come in any order.
    ///
    /// # Panics
    /// Panics if `x == y` — self-pairs are never join results.
    pub fn new(x: u64, y: u64, distance: u64) -> Self {
        assert_ne!(x, y, "self-pairs are not join results");
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        Self { a, b, distance }
    }

    /// The pair without the distance, for set comparisons.
    #[inline]
    pub fn ids(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordered::{FrequencyTable, OrderedRanking};
    use crate::ranking::Ranking;

    fn ordered(id: u64, items: &[u32]) -> OrderedRanking {
        let r = Ranking::new(id, items.to_vec()).unwrap();
        OrderedRanking::by_frequency(&r, &FrequencyTable::default())
    }

    #[test]
    fn verify_within() {
        let a = ordered(1, &[1, 2, 3, 4, 5]);
        let b = ordered(2, &[2, 1, 3, 4, 5]);
        let v = verify_candidate(&a, &b, Some((0, 1)), 2, true);
        assert_eq!(v, Verification::Within(2));
        assert_eq!(v.distance(), Some(2));
    }

    #[test]
    fn verify_position_pruned_before_distance() {
        let a = ordered(1, &[1, 2, 3, 4, 5]);
        let b = ordered(2, &[5, 2, 3, 4, 1]);
        // Shared item 1 has ranks (0, 4): 2·4 = 8 > θ = 7 → pruned.
        let v = verify_candidate(&a, &b, Some((0, 4)), 7, true);
        assert_eq!(v, Verification::PositionPruned);
        // With the filter disabled the distance computation catches it.
        let v = verify_candidate(&a, &b, Some((0, 4)), 7, false);
        assert_eq!(v, Verification::DistanceExceeded);
    }

    #[test]
    fn verify_distance_exceeded() {
        let a = ordered(1, &[1, 2, 3]);
        let b = ordered(2, &[7, 8, 9]);
        let v = verify_candidate(&a, &b, None, 5, true);
        assert_eq!(v, Verification::DistanceExceeded);
        assert_eq!(v.distance(), None);
    }

    #[test]
    fn result_pair_normalizes_order() {
        assert_eq!(ResultPair::new(9, 3, 5), ResultPair::new(3, 9, 5));
        assert_eq!(ResultPair::new(9, 3, 5).ids(), (3, 9));
    }

    #[test]
    #[should_panic(expected = "self-pairs")]
    fn result_pair_rejects_self_pairs() {
        let _ = ResultPair::new(4, 4, 0);
    }
}
