//! The *Ordering* phase: canonical reordering of ranking items by global
//! frequency (§4 and §5 of the paper).
//!
//! Prefix filtering requires all rankings to list their items in one common
//! canonical order. The paper orders items by **increasing frequency** of
//! occurrence in the dataset ("most real world datasets follow a skewed
//! distribution […] reordering the rankings by the item's frequency leads to
//! major performance gains"), so rare items land in the prefix and posting
//! lists stay short. The reordering only determines *which items form the
//! prefix*; the original ranks are preserved alongside each item because the
//! Footrule distance is computed over them.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::distance::footrule_sorted_within;
use crate::ranking::{ItemId, Ranking, RankingId};

/// Per-item occurrence counts over a dataset, defining the canonical order.
///
/// The canonical key is `(count, item)` ascending — ties are broken by item
/// id, which the paper leaves arbitrary ("ties are arbitrarily broken") but a
/// deterministic tiebreak makes runs reproducible.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrequencyTable {
    counts: HashMap<ItemId, u64>,
}

impl FrequencyTable {
    /// Builds the table by counting item occurrences across `rankings`.
    pub fn from_rankings<'a>(rankings: impl IntoIterator<Item = &'a Ranking>) -> Self {
        // alloc(one-time frequency-table build per dataset, not per-candidate)
        let mut counts = HashMap::new();
        for ranking in rankings {
            for &item in ranking.items() {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        Self { counts }
    }

    /// Builds the table from pre-aggregated `(item, count)` pairs — the shape
    /// produced by a distributed `reduce_by_key` stage.
    pub fn from_counts(pairs: impl IntoIterator<Item = (ItemId, u64)>) -> Self {
        Self {
            // alloc(one-time frequency-table build per dataset, not per-candidate)
            counts: pairs.into_iter().collect(),
        }
    }

    /// Occurrence count of `item` (0 if never seen).
    #[inline]
    pub fn count(&self, item: ItemId) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// The canonical sort key of `item`: ascending frequency, ties by id.
    #[inline]
    pub fn order_key(&self, item: ItemId) -> (u64, ItemId) {
        (self.count(item), item)
    }

    /// Number of distinct items seen.
    pub fn distinct_items(&self) -> usize {
        self.counts.len()
    }

    /// Total number of item occurrences.
    pub fn total_occurrences(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Relative frequencies of all items, descending — the input shape for
    /// [`crate::bounds::expected_posting_list_len`].
    pub fn relative_frequencies(&self) -> Vec<f64> {
        let total = self.total_occurrences();
        if total == 0 {
            // alloc(empty Vec never allocates; planner-side stats helper)
            return Vec::new();
        }
        let mut freqs: Vec<f64> = self
            .counts
            .values()
            // cast(occurrence counts are far below 2^53 — exact in f64)
            // alloc(planner-side stats helper, runs once per dataset)
            .map(|&c| c as f64 / total as f64)
            .collect();
        freqs.sort_by(|a, b| b.partial_cmp(a).expect("counts are finite"));
        freqs
    }
}

/// A ranking in canonical form: `(item, original_rank)` pairs sorted either
/// by ascending global frequency ([`OrderedRanking::by_frequency`]) or by the
/// original rank ([`OrderedRanking::by_rank`], the form used with the ordered
/// prefix of Lemma 4.1).
///
/// This mirrors the paper's transformation of rankings into "arrays of
/// `(i_id, τ(i))` pairs" (§4) — the prefix is a slice of the head, while the
/// attached original ranks keep the Footrule distance computable.
///
/// Besides the canonical-order `pairs`, every `OrderedRanking` carries a
/// one-time **item-sorted shadow view** of the same pairs. Verification is
/// the dominant join cost (§7), and with both sides item-sorted the
/// Footrule computation becomes a two-pointer merge
/// ([`crate::distance::footrule_sorted_within`]) — O(k) per candidate
/// instead of the naive O(k²) scan. The shadow is built once at
/// construction (amortized over every candidate the ranking appears in) and
/// is a pure function of `pairs`, so equality/hashing over both fields stays
/// consistent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderedRanking {
    id: RankingId,
    pairs: Box<[(ItemId, u16)]>,
    by_item: Box<[(ItemId, u16)]>,
}

/// Builds the item-sorted shadow of a canonical pair list.
fn sort_by_item(pairs: &[(ItemId, u16)]) -> Box<[(ItemId, u16)]> {
    // alloc(shadow built once per ranking at construction, amortized over its candidates)
    let mut shadow: Vec<(ItemId, u16)> = pairs.to_vec();
    shadow.sort_unstable();
    shadow.into_boxed_slice()
}

impl OrderedRanking {
    fn build(id: RankingId, pairs: Vec<(ItemId, u16)>) -> Self {
        let by_item = sort_by_item(&pairs);
        Self {
            id,
            pairs: pairs.into_boxed_slice(),
            by_item,
        }
    }

    /// Canonicalizes `ranking` by ascending item frequency (the default for
    /// VJ-style joins with the overlap prefix).
    pub fn by_frequency(ranking: &Ranking, freq: &FrequencyTable) -> Self {
        let mut pairs: Vec<(ItemId, u16)> = ranking
            .iter_with_ranks()
            // cast(rank < k ≤ MAX_K = u16::MAX by Ranking's construction invariant)
            // alloc(once per ranking at canonicalization, not per-candidate)
            .map(|(item, rank)| (item, rank as u16))
            .collect();
        pairs.sort_by_key(|&(item, _)| freq.order_key(item));
        Self::build(ranking.id(), pairs)
    }

    /// Keeps the original rank order — the canonical form for the **ordered
    /// prefix** (Lemma 4.1), whose prefix is the best-ranked items.
    pub fn by_rank(ranking: &Ranking) -> Self {
        let pairs: Vec<(ItemId, u16)> = ranking
            .iter_with_ranks()
            // cast(rank < k ≤ MAX_K = u16::MAX by Ranking's construction invariant)
            // alloc(once per ranking at canonicalization, not per-candidate)
            .map(|(item, rank)| (item, rank as u16))
            .collect();
        Self::build(ranking.id(), pairs)
    }

    /// Rebuilds from raw parts (used by codecs; pairs must be a permutation
    /// of a valid ranking's `(item, rank)` pairs). The item-sorted shadow is
    /// rebuilt here, so decoded rankings verify on the fast path too.
    pub fn from_pairs(id: RankingId, pairs: Vec<(ItemId, u16)>) -> Self {
        Self::build(id, pairs)
    }

    /// The ranking id.
    #[inline]
    pub fn id(&self) -> RankingId {
        self.id
    }

    /// The ranking length `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.pairs.len()
    }

    /// All `(item, original_rank)` pairs in canonical order.
    #[inline]
    pub fn pairs(&self) -> &[(ItemId, u16)] {
        &self.pairs
    }

    /// The first `p` pairs — the prefix to be indexed.
    #[inline]
    pub fn prefix(&self, p: usize) -> &[(ItemId, u16)] {
        // panics(the end index is clamped to pairs.len())
        &self.pairs[..p.min(self.pairs.len())]
    }

    /// The item-sorted shadow view: the same `(item, original_rank)` pairs
    /// sorted by ascending item id — the input shape of the merge
    /// verification kernel ([`crate::distance::footrule_sorted_within`]).
    #[inline]
    pub fn pairs_by_item(&self) -> &[(ItemId, u16)] {
        &self.by_item
    }

    /// The original rank of `item`, or `None` if not contained (binary
    /// search on the item-sorted shadow).
    pub fn rank_of(&self, item: ItemId) -> Option<usize> {
        self.by_item
            .binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            // panics(binary_search returns Ok(pos) with pos < by_item.len())
            .map(|pos| self.by_item[pos].1 as usize)
    }

    /// Raw Footrule distance to `other` (uses the preserved original ranks).
    pub fn footrule_raw(&self, other: &OrderedRanking) -> u64 {
        footrule_sorted_within(&self.by_item, &other.by_item, u64::MAX)
            .expect("u64::MAX threshold never prunes")
    }

    /// Early-exit verification: `Some(distance)` iff within `threshold_raw`.
    /// Runs on the item-sorted shadow views as an O(k) two-pointer merge —
    /// the per-candidate fast path of every join kernel.
    #[inline]
    pub fn footrule_within(&self, other: &OrderedRanking, threshold_raw: u64) -> Option<u64> {
        footrule_sorted_within(&self.by_item, &other.by_item, threshold_raw)
    }

    /// Converts back into a plain [`Ranking`] (restoring the original item
    /// order).
    pub fn to_ranking(&self) -> Ranking {
        let mut items: Vec<(u16, ItemId)> = self
            .pairs
            .iter()
            // alloc(result materialization for output/debug, off the verify path)
            .map(|&(item, rank)| (rank, item))
            .collect();
        items.sort_unstable();
        // alloc(result materialization for output/debug, off the verify path)
        Ranking::new_unchecked(self.id, items.into_iter().map(|(_, item)| item).collect())
    }

    /// Approximate deep size in bytes (for shuffle accounting). Counts both
    /// the canonical pairs and the item-sorted shadow.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.pairs.len() + self.by_item.len()) * std::mem::size_of::<(ItemId, u16)>()
    }
}

/// Canonicalizes a whole dataset by frequency (driver-side convenience; the
/// distributed pipelines do the same per partition with a broadcast table).
pub fn order_dataset(rankings: &[Ranking], freq: &FrequencyTable) -> Vec<OrderedRanking> {
    rankings
        .iter()
        // alloc(one-time dataset canonicalization on the driver)
        .map(|r| OrderedRanking::by_frequency(r, freq))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: u64, items: &[u32]) -> Ranking {
        Ranking::new(id, items.to_vec()).unwrap()
    }

    fn sample_dataset() -> Vec<Ranking> {
        // Figure 3's spirit: item 5 occurs everywhere (most frequent), item 9
        // once (rarest).
        vec![
            r(1, &[2, 5, 4, 3, 1]),
            r(2, &[5, 2, 4, 3, 1]),
            r(3, &[0, 8, 5, 3, 7]),
            r(4, &[8, 0, 5, 3, 7]),
            r(5, &[2, 5, 3, 4, 1]),
            r(6, &[6, 9, 8, 0, 5]),
        ]
    }

    #[test]
    fn frequency_table_counts() {
        let ds = sample_dataset();
        let freq = FrequencyTable::from_rankings(&ds);
        assert_eq!(freq.count(5), 6);
        assert_eq!(freq.count(9), 1);
        assert_eq!(freq.count(42), 0);
        assert_eq!(freq.total_occurrences(), 30);
        assert_eq!(freq.distinct_items(), 10);
    }

    #[test]
    fn from_counts_matches_from_rankings() {
        let ds = sample_dataset();
        let direct = FrequencyTable::from_rankings(&ds);
        let mut agg: HashMap<ItemId, u64> = HashMap::new();
        for ranking in &ds {
            for &item in ranking.items() {
                *agg.entry(item).or_insert(0) += 1;
            }
        }
        let rebuilt = FrequencyTable::from_counts(agg);
        for item in 0..=9 {
            assert_eq!(direct.count(item), rebuilt.count(item));
        }
    }

    #[test]
    fn ordering_puts_rare_items_first() {
        let ds = sample_dataset();
        let freq = FrequencyTable::from_rankings(&ds);
        let ordered = OrderedRanking::by_frequency(&ds[5], &freq);
        // τ6 = [6,9,8,0,5]; counts: 6→1, 9→1, 8→3, 0→3, 5→6.
        // Ascending (count, id): (1,6), (1,9), (3,0), (3,8), (6,5).
        let items: Vec<u32> = ordered.pairs().iter().map(|&(i, _)| i).collect();
        assert_eq!(items, vec![6, 9, 0, 8, 5]);
        // Original ranks are preserved.
        assert_eq!(ordered.rank_of(6), Some(0));
        assert_eq!(ordered.rank_of(5), Some(4));
        assert_eq!(ordered.rank_of(0), Some(3));
    }

    #[test]
    fn by_rank_is_identity_order() {
        let ranking = r(9, &[7, 3, 1]);
        let ordered = OrderedRanking::by_rank(&ranking);
        assert_eq!(ordered.pairs(), &[(7, 0), (3, 1), (1, 2)]);
        assert_eq!(ordered.prefix(2), &[(7, 0), (3, 1)]);
    }

    #[test]
    fn ordered_distance_equals_plain_distance() {
        let ds = sample_dataset();
        let freq = FrequencyTable::from_rankings(&ds);
        let ordered = order_dataset(&ds, &freq);
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                assert_eq!(
                    ordered[i].footrule_raw(&ordered[j]),
                    crate::distance::footrule_raw(&ds[i], &ds[j]),
                    "pair ({}, {})",
                    ds[i].id(),
                    ds[j].id()
                );
            }
        }
    }

    #[test]
    fn prefix_is_clamped() {
        let ds = sample_dataset();
        let freq = FrequencyTable::from_rankings(&ds);
        let ordered = OrderedRanking::by_frequency(&ds[0], &freq);
        assert_eq!(ordered.prefix(99).len(), 5);
        assert_eq!(ordered.prefix(0).len(), 0);
    }

    #[test]
    fn round_trip_to_ranking() {
        let ds = sample_dataset();
        let freq = FrequencyTable::from_rankings(&ds);
        for original in &ds {
            let ordered = OrderedRanking::by_frequency(original, &freq);
            assert_eq!(&ordered.to_ranking(), original);
        }
    }

    #[test]
    fn shadow_view_is_an_item_sorted_permutation() {
        let ds = sample_dataset();
        let freq = FrequencyTable::from_rankings(&ds);
        for r in &ds {
            for ordered in [
                OrderedRanking::by_frequency(r, &freq),
                OrderedRanking::by_rank(r),
            ] {
                let shadow = ordered.pairs_by_item();
                assert!(shadow.windows(2).all(|w| w[0].0 < w[1].0), "not sorted");
                let mut canonical: Vec<(u32, u16)> = ordered.pairs().to_vec();
                canonical.sort_unstable();
                assert_eq!(shadow, canonical.as_slice(), "not a permutation");
            }
        }
    }

    #[test]
    fn from_pairs_rebuilds_the_shadow() {
        let ordered = OrderedRanking::from_pairs(7, vec![(9, 0), (2, 1), (5, 2)]);
        assert_eq!(ordered.pairs(), &[(9, 0), (2, 1), (5, 2)]);
        assert_eq!(ordered.pairs_by_item(), &[(2, 1), (5, 2), (9, 0)]);
        assert_eq!(ordered.rank_of(9), Some(0));
        assert_eq!(ordered.rank_of(5), Some(2));
        assert_eq!(ordered.rank_of(4), None);
    }

    #[test]
    fn empty_frequency_table_relative_frequencies() {
        let freq = FrequencyTable::default();
        assert!(freq.relative_frequencies().is_empty());
    }

    #[test]
    fn relative_frequencies_sum_to_one() {
        let ds = sample_dataset();
        let freq = FrequencyTable::from_rankings(&ds);
        let rel = freq.relative_frequencies();
        let sum: f64 = rel.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Descending order.
        assert!(rel.windows(2).all(|w| w[0] >= w[1]));
    }
}
