//! Pruning bounds for Footrule similarity joins over top-k rankings.
//!
//! All bounds operate on **raw** (unnormalized) distances; convert a
//! normalized threshold with [`crate::distance::raw_threshold`] first. The
//! derivations follow §4 of the paper and the authors' prior work
//! (Milchevski, Anand, Michel: EDBT 2015 \[18\]; Panev et al. \[19\]):
//!
//! * **Minimum distance given overlap.** If two rankings of length `k` share
//!   exactly `o` items, each of the `k − o` items private to a ranking
//!   contributes at least `k − rank` (it is missing from the other list and
//!   gets rank `l = k` there). The cheapest arrangement places the private
//!   items at the bottom positions `o, …, k−1`, contributing
//!   `Σ_{m=1}^{k−o} m = (k−o)(k−o+1)/2` per side, i.e.
//!   `F ≥ (k−o)(k−o+1)` in total.
//! * **Overlap prefix.** Inverting the bound: `F ≤ θ` forces an overlap of at
//!   least `ω = k − x` items where `x` is the largest integer with
//!   `x(x+1) ≤ θ`. By the classic prefix-filtering argument, two size-`k`
//!   sets sharing `ω` items must collide within their first `k − ω + 1`
//!   tokens of any *common* canonical order, so indexing a prefix of
//!   `p = k − ω + 1` items is complete.
//! * **Ordered prefix (Lemma 4.1).** If the first `p` (top-ranked) items of
//!   the two rankings are disjoint, then `F ≥ L(p, k) = 2p²` (for
//!   `p ≤ k/2`), so a prefix of the best-ranked `p_o = ⌊√(θ/2)⌋ + 1` items
//!   suffices — valid only for `θ < k²/2`, which covers every practical
//!   threshold (the paper notes `θ ≤ 0.4` normalized is common practice).
//! * **Position filter** (\[19\], used in §4). The rank sums of two top-k lists
//!   over the union of their domains are equal (both equal
//!   `k(k−1)/2 + (|D_τ ∪ D_σ| − k)·k`), so positive and negative rank
//!   deviations cancel: `Σ (τ(i) − σ(i)) = 0`. Hence a single shared item
//!   with rank difference `Δ` forces `F ≥ 2Δ`, i.e. a pair can be pruned as
//!   soon as one shared item satisfies `2Δ > θ` (the paper states this as
//!   `Δ > k(k+1)·θ_norm / 2`).

/// Integer square root: the largest `r` with `r² ≤ n`.
///
/// Exact for all `u64` inputs (the float seed is refined with integer
/// comparisons), unlike a bare `(n as f64).sqrt() as u64`.
pub(crate) fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    // cast(float seed only — the loops below correct it with exact integer comparisons)
    let mut r = (n as f64).sqrt() as u64;
    // The float estimate is off by at most one in either direction for u64.
    while r.checked_mul(r).is_none_or(|sq| sq > n) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= n) {
        r += 1;
    }
    r
}

/// Minimum raw Footrule distance between two rankings of length `k` that
/// share exactly `o` items: `(k − o)(k − o + 1)`.
///
/// # Panics
/// Panics if `o > k`.
#[inline]
pub fn min_distance_given_overlap(k: usize, o: usize) -> u64 {
    assert!(o <= k, "overlap cannot exceed the ranking length");
    let d = (k - o) as u64;
    d * (d + 1)
}

/// The minimum number of items two rankings of length `k` must share to
/// possibly be within raw distance `theta_raw`.
///
/// Pairs sharing fewer items are guaranteed to have `F > theta_raw`. Returns
/// `0` when the threshold admits disjoint rankings (prefix filtering is then
/// powerless).
pub fn min_overlap(k: usize, theta_raw: u64) -> usize {
    // Largest x ≥ 0 with x(x+1) ≤ θ: x = ⌊(√(1+4θ) − 1) / 2⌋, computed
    // exactly with integer arithmetic.
    let x: u64 = (isqrt(1 + 4 * theta_raw) - 1) / 2;
    k.saturating_sub(x as usize)
}

/// The prefix length for the **overlap-based** prefix filter (`p = k − ω + 1`
/// where `ω` is [`min_overlap`]), clamped to `[1, k]`.
///
/// Any pair within `theta_raw` shares at least one item among their first `p`
/// tokens of a common canonical order — the completeness guarantee that VJ's
/// candidate generation relies on.
pub fn overlap_prefix_len(k: usize, theta_raw: u64) -> usize {
    let omega = min_overlap(k, theta_raw);
    let p = if omega == 0 {
        // Disjoint pairs can qualify: prefix filtering cannot prune anything
        // and the whole ranking must be indexed.
        k
    } else {
        (k - omega + 1).min(k)
    };
    crate::invariants::check_prefix_len(p, k);
    p
}

/// Lower bound `L(p, k) = 2p²` on the Footrule distance of two rankings of
/// length `k` whose first `p` (top-ranked) items are disjoint, valid for
/// `p ≤ k/2` (Lemma 4.1's proof; see Figure 1 of the paper for a tight
/// example with `k = 5`, `p = 2`, `F = 8`).
#[inline]
pub fn lower_bound_disjoint_prefix(p: usize) -> u64 {
    2 * (p as u64) * (p as u64)
}

/// The **ordered** prefix length of Lemma 4.1: the best-ranked
/// `p_o = ⌊√(θ/2)⌋ + 1` items, valid only when `theta_raw < k²/2` (otherwise
/// `None`; the paper leaves larger thresholds as future work and recommends
/// the overlap prefix there).
pub fn ordered_prefix_len(k: usize, theta_raw: u64) -> Option<usize> {
    let k64 = k as u64;
    if 2 * theta_raw >= k64 * k64 {
        return None;
    }
    // Largest x with 2x² ≤ θ, then one more item to avoid missing pairs at
    // exactly the bound.
    let x: u64 = isqrt(theta_raw / 2);
    let p = ((x + 1) as usize).min(k);
    crate::invariants::check_prefix_len(p, k);
    Some(p)
}

/// Position filter (\[19\]): a shared item whose ranks in the two rankings
/// differ by more than `theta_raw / 2` certifies `F > theta_raw`.
///
/// Returns `true` when the pair can be **pruned**. Implemented as
/// `2·|rank_a − rank_b| > theta_raw` to stay exact in integers.
#[inline]
pub fn position_filter_prunes(rank_a: usize, rank_b: usize, theta_raw: u64) -> bool {
    2 * (rank_a as u64).abs_diff(rank_b as u64) > theta_raw
}

/// Which prefix-derivation a join should use (§4 offers both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefixKind {
    /// Prefix size from the minimum-overlap bound; requires a common
    /// canonical token order (frequency ordering), which is what the paper's
    /// implementation uses since the reordering "leads to major performance
    /// gains".
    Overlap,
    /// Prefix of the best-ranked items (Lemma 4.1); slightly tighter for
    /// small `θ`, but incompatible with frequency reordering — the prefix is
    /// the *top* of the ranking in original order.
    Ordered,
}

impl PrefixKind {
    /// The prefix length for rankings of length `k` under raw threshold
    /// `theta_raw`. For [`PrefixKind::Ordered`] outside its validity range
    /// (`θ ≥ k²/2`) this falls back to the overlap prefix.
    pub fn prefix_len(self, k: usize, theta_raw: u64) -> usize {
        match self {
            PrefixKind::Overlap => overlap_prefix_len(k, theta_raw),
            PrefixKind::Ordered => {
                ordered_prefix_len(k, theta_raw).unwrap_or_else(|| overlap_prefix_len(k, theta_raw))
            }
        }
    }
}

/// Expected inverted-index posting-list length (Eq. 4 of the paper):
/// `E[len] = Σ_i n · f(i)²` where `f(i)` is the relative frequency of the
/// `i`-th prefix-eligible item and `n` the number of indexed rankings.
///
/// `rel_freqs` are the relative frequencies of the `v'` distinct items that
/// can appear in a prefix. Used as guidance for choosing the partitioning
/// threshold `δ` of CL-P (§6).
pub fn expected_posting_list_len(n: usize, rel_freqs: &[f64]) -> f64 {
    // cast(dataset sizes are far below 2^53 — exact in f64)
    rel_freqs.iter().map(|f| n as f64 * f * f).sum()
}

/// Convenience: all bounds for one `(k, θ_norm)` configuration, useful for
/// logging and for the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSummary {
    /// Ranking length.
    pub k: usize,
    /// Raw distance threshold.
    pub theta_raw: u64,
    /// Minimum required overlap ω.
    pub min_overlap: usize,
    /// Overlap-based prefix length.
    pub overlap_prefix: usize,
    /// Ordered prefix length (Lemma 4.1), when valid.
    pub ordered_prefix: Option<usize>,
    /// Maximum admissible rank difference of a shared item (position filter).
    pub max_rank_diff: u64,
}

impl BoundSummary {
    /// Computes every bound for a normalized threshold `theta`.
    pub fn new(k: usize, theta: f64) -> Self {
        let theta_raw = crate::distance::raw_threshold(k, theta);
        Self {
            k,
            theta_raw,
            min_overlap: min_overlap(k, theta_raw),
            overlap_prefix: overlap_prefix_len(k, theta_raw),
            ordered_prefix: ordered_prefix_len(k, theta_raw),
            max_rank_diff: theta_raw / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{footrule_raw, max_raw_distance, raw_threshold};
    use crate::ranking::Ranking;

    #[test]
    fn isqrt_is_exact() {
        for n in 0..2000u64 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
        assert_eq!(isqrt(u64::MAX), u64::from(u32::MAX));
        let just_below_square = (1u64 << 32).wrapping_mul(1u64 << 32).wrapping_sub(1);
        assert_eq!(isqrt(just_below_square), (1u64 << 32) - 1);
    }

    #[test]
    fn min_overlap_edge_cases() {
        // θ = 0: identical rankings only → all k items shared.
        assert_eq!(min_overlap(10, 0), 10);
        // θ = max = k(k+1): disjoint rankings qualify → no overlap needed.
        assert_eq!(min_overlap(10, max_raw_distance(10)), 0);
        // One swap (distance 2) still requires all items shared: x(x+1) ≤ 2
        // gives x = 1 → ω = k − 1.
        assert_eq!(min_overlap(10, 2), 9);
    }

    #[test]
    fn overlap_prefix_edge_cases() {
        // θ = 0 → prefix of 1 (identical rankings share every token).
        assert_eq!(overlap_prefix_len(10, 0), 1);
        // θ = max → must index everything.
        assert_eq!(overlap_prefix_len(10, max_raw_distance(10)), 10);
    }

    #[test]
    fn overlap_prefix_for_paper_thresholds() {
        // k = 10, max = 110. Raw thresholds for θ ∈ {0.1, 0.2, 0.3, 0.4}.
        for (theta, expected_x) in [(0.1, 2), (0.2, 4), (0.3, 5), (0.4, 6)] {
            let raw = raw_threshold(10, theta);
            // x = largest integer with x(x+1) ≤ raw.
            let x = (0..=10).rev().find(|x| x * (x + 1) <= raw).unwrap();
            assert_eq!(x, expected_x, "θ = {theta}");
            assert_eq!(min_overlap(10, raw), 10 - expected_x as usize);
            assert_eq!(overlap_prefix_len(10, raw), expected_x as usize + 1);
        }
    }

    #[test]
    fn ordered_prefix_matches_lemma() {
        // Figure 1 / Lemma 4.1: k = 5, rankings with disjoint first-2 items
        // have F ≥ 8. Thus for θ < 8 a prefix of 2 suffices; our formula:
        // θ = 7 → x = isqrt(3) = 1 → p_o = 2.
        assert_eq!(ordered_prefix_len(5, 7), Some(2));
        // θ = 8 admits the Figure-1 pair itself → need p_o = 3.
        assert_eq!(ordered_prefix_len(5, 8), Some(3));
        // Validity boundary: θ ≥ k²/2 = 12.5 → raw 13 is out of range...
        // 2·13 = 26 > 25 → None.
        assert_eq!(ordered_prefix_len(5, 13), None);
        assert_eq!(ordered_prefix_len(5, 12), Some(3));
    }

    #[test]
    fn ordered_prefix_never_exceeds_k() {
        assert_eq!(ordered_prefix_len(3, 4), Some(2));
        assert_eq!(ordered_prefix_len(2, 1), Some(1));
    }

    #[test]
    fn lower_bound_matches_figure_one() {
        let a = Ranking::new(1, vec![1, 2, 3, 4, 5]).unwrap();
        let b = Ranking::new(2, vec![3, 4, 1, 2, 5]).unwrap();
        assert_eq!(footrule_raw(&a, &b), lower_bound_disjoint_prefix(2));
    }

    #[test]
    fn min_distance_given_overlap_is_tight() {
        // k = 5, o = 3: private items at the bottom two positions of each
        // ranking. Best case: shared items at identical ranks.
        let a = Ranking::new(1, vec![1, 2, 3, 10, 11]).unwrap();
        let b = Ranking::new(2, vec![1, 2, 3, 20, 21]).unwrap();
        assert_eq!(footrule_raw(&a, &b), min_distance_given_overlap(5, 3));
        // And no pair with overlap 3 can do better (checked by the generic
        // property test in tests/props.rs).
    }

    #[test]
    #[should_panic(expected = "overlap cannot exceed")]
    fn min_distance_rejects_bogus_overlap() {
        let _ = min_distance_given_overlap(3, 4);
    }

    #[test]
    fn position_filter_on_known_pair() {
        // a = [1,2,3,4,5], b = [5,2,3,4,1]: item 1 moves by 4 → F ≥ 8.
        let a = Ranking::new(1, vec![1, 2, 3, 4, 5]).unwrap();
        let b = Ranking::new(2, vec![5, 2, 3, 4, 1]).unwrap();
        let f = footrule_raw(&a, &b);
        assert_eq!(f, 8);
        // Prunable for every θ < 8, not prunable at θ = 8.
        assert!(position_filter_prunes(0, 4, 7));
        assert!(!position_filter_prunes(0, 4, 8));
    }

    #[test]
    fn prefix_kind_falls_back_when_ordered_invalid() {
        let theta_raw = 13; // ≥ k²/2 for k = 5
        assert_eq!(
            PrefixKind::Ordered.prefix_len(5, theta_raw),
            overlap_prefix_len(5, theta_raw)
        );
        assert_eq!(
            PrefixKind::Overlap.prefix_len(5, 7),
            overlap_prefix_len(5, 7)
        );
        assert_eq!(PrefixKind::Ordered.prefix_len(5, 7), 2);
    }

    #[test]
    fn expected_posting_list_len_uniform() {
        // Uniform frequencies 1/v over v items: E = n/v per list.
        let freqs = vec![0.25; 4];
        let e = expected_posting_list_len(100, &freqs);
        assert!((e - 25.0).abs() < 1e-9);
    }

    #[test]
    fn bound_summary_is_consistent() {
        let s = BoundSummary::new(10, 0.3);
        assert_eq!(s.theta_raw, raw_threshold(10, 0.3));
        assert_eq!(s.overlap_prefix, overlap_prefix_len(10, s.theta_raw));
        assert_eq!(s.min_overlap, min_overlap(10, s.theta_raw));
        assert_eq!(s.max_rank_diff, s.theta_raw / 2);
    }
}
