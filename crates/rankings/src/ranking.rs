//! The core [`Ranking`] type: a fixed-length top-k list of distinct items.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a ranked item. Items are represented by their ids throughout
/// the paper (§1.1) and this crate.
pub type ItemId = u32;

/// Identifier of a ranking within a dataset.
pub type RankingId = u64;

/// Widens a rank (a `usize` position, `< k` by construction) into the `u64`
/// domain of raw Footrule sums.
///
/// Exists so the hot distance kernels can widen without a raw `as` cast at
/// every use site: `usize → u64` is value-preserving on every target the
/// workspace supports, and the one cast below is verified by
/// `cargo run -p xtask -- casts` against the annotated parameter type.
#[inline]
#[must_use]
pub fn rank_u64(rank: usize) -> u64 {
    rank as u64
}

/// Which input relation a record belongs to in a two-relation (R-S) join.
///
/// Self-joins tag every record [`Relation::Left`]. In an R-S join the two id
/// spaces may overlap, so a record is identified by the pair
/// `(relation, id)`; the derived `Ord` puts `Left` before `Right`, which is
/// the canonical orientation of an emitted R-S pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// The left (R) relation — in arrival mode, the standing corpus.
    Left,
    /// The right (S) relation — in arrival mode, the new batch.
    Right,
}

impl Relation {
    /// Stable single-byte encoding for spill codecs.
    #[inline]
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            Relation::Left => 0,
            Relation::Right => 1,
        }
    }

    /// Inverse of [`Relation::as_u8`]; any non-zero byte decodes as `Right`.
    #[inline]
    #[must_use]
    pub fn from_u8(byte: u8) -> Self {
        if byte == 0 {
            Relation::Left
        } else {
            Relation::Right
        }
    }
}

/// Errors raised when constructing a [`Ranking`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingError {
    /// The item list was empty; a top-k ranking needs `k ≥ 1`.
    Empty,
    /// An item occurred more than once. The offending item is attached.
    DuplicateItem(ItemId),
    /// The ranking length would overflow the rank representation.
    TooLong(usize),
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::Empty => write!(f, "a top-k ranking must contain at least one item"),
            RankingError::DuplicateItem(item) => {
                write!(f, "item {item} appears more than once in the ranking")
            }
            RankingError::TooLong(len) => {
                write!(f, "ranking length {len} exceeds the supported maximum")
            }
        }
    }
}

impl std::error::Error for RankingError {}

/// Maximum supported ranking length.
///
/// Real-world top-k rankings are short — the paper's own study (\[3\] in the
/// paper) found most rankings have `k = 10` or `k = 20`, and the evaluation
/// uses `k ∈ {10, 25}`. Capping `k` lets every distance fit comfortably in a
/// `u64` (max raw distance is `k·(k+1)`) and lets ranks be stored as `u16`.
pub const MAX_K: usize = u16::MAX as usize;

/// A top-k ranking: an ordered list of `k` **distinct** items.
///
/// `items[r]` is the item at rank `r`, with rank `0` being the top position
/// (the paper uses ranks `0..k−1` and the artificial rank `l = k` for items
/// not contained in the ranking, see §3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ranking {
    id: RankingId,
    items: Box<[ItemId]>,
}

impl Ranking {
    /// Builds a ranking after validating that the items are non-empty and
    /// pairwise distinct.
    pub fn new(id: RankingId, items: Vec<ItemId>) -> Result<Self, RankingError> {
        if items.is_empty() {
            return Err(RankingError::Empty);
        }
        if items.len() > MAX_K {
            return Err(RankingError::TooLong(items.len()));
        }
        // k is tiny (usually 10–25): a quadratic scan beats hashing here and
        // reports the first duplicate deterministically.
        for (pos, item) in items.iter().enumerate() {
            if items[..pos].contains(item) {
                return Err(RankingError::DuplicateItem(*item));
            }
        }
        Ok(Self {
            id,
            items: items.into_boxed_slice(),
        })
    }

    /// Builds a ranking without the duplicate check.
    ///
    /// Intended for data that is known valid (e.g. produced by
    /// [`crate::ordered`] or a validated loader). Invalid input does not cause
    /// memory unsafety, only wrong distances, hence this is a safe function —
    /// but debug builds still assert the invariant.
    pub fn new_unchecked(id: RankingId, items: Vec<ItemId>) -> Self {
        debug_assert!(
            Self::new(id, items.clone()).is_ok(),
            "Ranking::new_unchecked called with invalid items"
        );
        Self {
            id,
            items: items.into_boxed_slice(),
        }
    }

    /// The ranking's identifier.
    #[inline]
    pub fn id(&self) -> RankingId {
        self.id
    }

    /// The ranking length `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.items.len()
    }

    /// The ranked items, top rank first.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// The rank of `item`, or `None` if the item is not contained.
    ///
    /// Linear scan: `k` is small enough that this beats a hash lookup.
    #[inline]
    pub fn rank_of(&self, item: ItemId) -> Option<usize> {
        self.items.iter().position(|&i| i == item)
    }

    /// The rank of `item` using the paper's convention that missing items get
    /// the artificial rank `l = k`.
    #[inline]
    pub fn rank_or_l(&self, item: ItemId) -> usize {
        self.rank_of(item).unwrap_or(self.items.len())
    }

    /// Whether the ranking contains `item`.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.contains(&item)
    }

    /// Iterator over `(item, rank)` pairs.
    pub fn iter_with_ranks(&self) -> impl Iterator<Item = (ItemId, usize)> + '_ {
        self.items
            .iter()
            .enumerate()
            .map(|(rank, &item)| (item, rank))
    }

    /// The number of items shared with `other`.
    pub fn overlap(&self, other: &Ranking) -> usize {
        self.items
            .iter()
            .filter(|item| other.contains(**item))
            .count()
    }

    /// Approximate deep size in bytes (used for shuffle-volume accounting).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.items.len() * std::mem::size_of::<ItemId>()
    }
}

impl fmt::Display for Ranking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}[", self.id)?;
        for (pos, item) in self.items.iter().enumerate() {
            if pos > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_distinct_items() {
        let r = Ranking::new(7, vec![2, 5, 4, 3, 1]).unwrap();
        assert_eq!(r.id(), 7);
        assert_eq!(r.k(), 5);
        assert_eq!(r.items(), &[2, 5, 4, 3, 1]);
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Ranking::new(0, vec![]), Err(RankingError::Empty));
    }

    #[test]
    fn new_rejects_duplicates_and_reports_first() {
        assert_eq!(
            Ranking::new(0, vec![1, 2, 3, 2, 1]),
            Err(RankingError::DuplicateItem(2))
        );
    }

    #[test]
    fn rank_lookup_follows_paper_convention() {
        let r = Ranking::new(1, vec![10, 20, 30]).unwrap();
        assert_eq!(r.rank_of(10), Some(0));
        assert_eq!(r.rank_of(30), Some(2));
        assert_eq!(r.rank_of(99), None);
        // Missing items get the artificial rank l = k.
        assert_eq!(r.rank_or_l(99), 3);
    }

    #[test]
    fn overlap_counts_shared_items() {
        let a = Ranking::new(1, vec![1, 2, 3, 4, 5]).unwrap();
        let b = Ranking::new(2, vec![4, 5, 6, 7, 8]).unwrap();
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(b.overlap(&a), 2);
        assert_eq!(a.overlap(&a), 5);
    }

    #[test]
    fn display_is_compact() {
        let r = Ranking::new(3, vec![9, 1]).unwrap();
        assert_eq!(r.to_string(), "τ3[9,1]");
    }

    #[test]
    fn iter_with_ranks_yields_positions() {
        let r = Ranking::new(1, vec![5, 6]).unwrap();
        let pairs: Vec<_> = r.iter_with_ranks().collect();
        assert_eq!(pairs, vec![(5, 0), (6, 1)]);
    }
}
