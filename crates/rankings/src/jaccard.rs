//! Jaccard distance for fixed-size sets — the extension the paper names as
//! future work (§8: "we plan to extend our approach to sets where the
//! Jaccard distance is used as a distance measure").
//!
//! A top-k ranking, ignoring its rank order, is a k-item set; the Jaccard
//! distance `d_J(A, B) = 1 − |A ∩ B| / |A ∪ B|` is a metric (the
//! Steinhaus/Marczewski–Steinhaus theorem), so the whole CL machinery —
//! clustering, centroid joining at `θ + 2θc`, triangle-bounded expansion —
//! carries over. For two k-sets the distance is a function of the overlap
//! `o` alone:
//!
//! ```text
//! d_J = (2k − 2o) / (2k − o)
//! ```
//!
//! so verification reduces to counting shared items, and the prefix bound
//! has a closed form: `d_J ≤ θ  ⇔  o ≥ ⌈2k(1−θ) / (2−θ)⌉`.

use crate::ranking::Ranking;

/// Jaccard distance between the item *sets* of two rankings.
pub fn jaccard_distance(a: &Ranking, b: &Ranking) -> f64 {
    // cast(o ≤ k ≤ MAX_K and k + k ≤ 2^17 — exact in f64)
    let o = a.overlap(b) as f64;
    let union = (a.k() + b.k()) as f64 - o;
    if union == 0.0 {
        0.0
    } else {
        1.0 - o / union
    }
}

/// Exact threshold predicate: `d_J(a, b) ≤ theta`.
///
/// Evaluated without dividing: `(|A|+|B|−2o) ≤ θ·(|A|+|B|−o)`, so every
/// caller (brute force, VJ, CL) decides candidate pairs identically.
pub fn jaccard_within(a: &Ranking, b: &Ranking, theta: f64) -> Option<f64> {
    let o = a.overlap(b);
    let total = a.k() + b.k();
    // cast(total ≤ 2·MAX_K ≤ 2^17 — exact in f64)
    let num = (total - 2 * o) as f64; // |A∪B| − |A∩B| scaled: union − inter
    let den = (total - o) as f64; // |A∪B|
    if num <= theta * den {
        // panics(den == 0.0 takes the zero branch — the divisor is non-zero)
        Some(if den == 0.0 { 0.0 } else { num / den })
    } else {
        None
    }
}

/// The minimum overlap two `k`-sets must share to possibly be within
/// Jaccard distance `theta`: `⌈2k(1−θ) / (2−θ)⌉`.
pub fn jaccard_min_overlap(k: usize, theta: f64) -> usize {
    debug_assert!((0.0..=1.0).contains(&theta));
    if theta >= 1.0 {
        return 0;
    }
    // cast(k ≤ MAX_K — exact in f64)
    let bound = 2.0 * k as f64 * (1.0 - theta) / (2.0 - theta);
    // Find the smallest integer o with (2k − 2o) ≤ θ (2k − o), starting from
    // the float estimate and correcting with the exact predicate — immune
    // to rounding at the boundary.
    // cast(float estimate only — corrected by the exact predicate below; ceil is ≥ 0 and ≤ 2k)
    let mut o = bound.ceil() as usize;
    o = o.min(k);
    // cast(both operands ≤ 2k ≤ 2^17 — exact in f64)
    let qualifies = |o: usize| (2 * k - 2 * o.min(k)) as f64 <= theta * (2 * k - o.min(k)) as f64;
    while o > 0 && qualifies(o - 1) {
        o -= 1;
    }
    while o <= k && !qualifies(o) {
        o += 1;
    }
    o.min(k)
}

/// Prefix length for the Jaccard prefix filter over `k`-sets: `k − ω + 1`
/// (clamped to `[1, k]`); `k` when disjoint sets qualify (θ = 1).
pub fn jaccard_prefix_len(k: usize, theta: f64) -> usize {
    let omega = jaccard_min_overlap(k, theta);
    if omega == 0 {
        k
    } else {
        (k - omega + 1).min(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: u64, items: &[u32]) -> Ranking {
        Ranking::new(id, items.to_vec()).unwrap()
    }

    #[test]
    fn identical_sets_have_distance_zero() {
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[5, 4, 3, 2, 1]); // same set, different order
        assert_eq!(jaccard_distance(&a, &b), 0.0);
        assert_eq!(jaccard_within(&a, &b, 0.0), Some(0.0));
    }

    #[test]
    fn disjoint_sets_have_distance_one() {
        let a = r(1, &[1, 2, 3]);
        let b = r(2, &[4, 5, 6]);
        assert_eq!(jaccard_distance(&a, &b), 1.0);
        assert!(jaccard_within(&a, &b, 0.99).is_none());
        assert!(jaccard_within(&a, &b, 1.0).is_some());
    }

    #[test]
    fn known_overlap_value() {
        // k = 5, o = 3: d = (10 − 6) / (10 − 3) = 4/7.
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[1, 2, 3, 8, 9]);
        let d = jaccard_distance(&a, &b);
        assert!((d - 4.0 / 7.0).abs() < 1e-12);
        assert!(jaccard_within(&a, &b, 4.0 / 7.0).is_some());
        assert!(jaccard_within(&a, &b, 4.0 / 7.0 - 1e-9).is_none());
    }

    #[test]
    fn min_overlap_boundaries() {
        // θ = 0: identical sets only.
        assert_eq!(jaccard_min_overlap(10, 0.0), 10);
        // θ = 1: disjoint sets qualify.
        assert_eq!(jaccard_min_overlap(10, 1.0), 0);
        // k = 5, o = 3 gives d = 4/7 ≈ 0.571: at θ = 0.571… o = 3 must
        // suffice, just below it must not.
        assert_eq!(jaccard_min_overlap(5, 4.0 / 7.0), 3);
        assert_eq!(jaccard_min_overlap(5, 4.0 / 7.0 - 1e-9), 4);
    }

    #[test]
    fn min_overlap_is_consistent_with_the_predicate() {
        for k in [1usize, 2, 5, 10, 25] {
            for theta in [0.0, 0.1, 0.25, 0.333, 0.5, 0.7, 0.9, 0.999, 1.0] {
                let omega = jaccard_min_overlap(k, theta);
                // o = ω qualifies (or ω = 0 and disjoint qualifies at θ=1)…
                let d_at = |o: usize| (2 * k - 2 * o) as f64 / (2 * k - o) as f64;
                if omega > 0 {
                    assert!(
                        d_at(omega) <= theta + 1e-12,
                        "k={k} θ={theta}: ω={omega} does not qualify"
                    );
                    // …and ω − 1 does not.
                    assert!(
                        d_at(omega - 1) > theta - 1e-12,
                        "k={k} θ={theta}: ω−1={} still qualifies",
                        omega - 1
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_len_boundaries() {
        assert_eq!(jaccard_prefix_len(10, 0.0), 1);
        assert_eq!(jaccard_prefix_len(10, 1.0), 10);
        // k = 5, θ = 0.5: ω = ⌈2·5·0.5 / 1.5⌉ = ⌈10/3⌉ = 4 → p = 2.
        assert_eq!(jaccard_min_overlap(5, 0.5), 4);
        assert_eq!(jaccard_prefix_len(5, 0.5), 2);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[1, 2, 3, 8, 9]);
        let c = r(3, &[1, 2, 7, 8, 9]);
        let ab = jaccard_distance(&a, &b);
        let bc = jaccard_distance(&b, &c);
        let ac = jaccard_distance(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
