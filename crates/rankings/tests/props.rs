//! Property-based tests for the metric and the pruning bounds.
//!
//! These are the load-bearing guarantees of the whole system: the clustering
//! algorithm (CL/CL-P) is only correct because the Footrule adaptation is a
//! metric, and the prefix/position filters are only admissible because they
//! never prune a true result.

use proptest::prelude::*;
use topk_rankings::bounds::{
    lower_bound_disjoint_prefix, min_distance_given_overlap, min_overlap, ordered_prefix_len,
    overlap_prefix_len, position_filter_prunes,
};
use topk_rankings::distance::{
    footrule_norm, footrule_pairs, footrule_pairs_within, footrule_raw, footrule_sorted_within,
    footrule_within, kendall_tau_topk, max_raw_distance, raw_threshold,
};
use topk_rankings::ordered::{FrequencyTable, OrderedRanking};
use topk_rankings::Ranking;

/// Strategy: a top-k ranking with `k` distinct items drawn from a small
/// universe (small universes maximize overlap, which is the interesting
/// regime for the bounds).
fn ranking_strategy(k: usize, universe: u32) -> impl Strategy<Value = Ranking> {
    proptest::sample::subsequence((0..universe).collect::<Vec<u32>>(), k)
        .prop_shuffle()
        .prop_map(move |items| Ranking::new_unchecked(0, items))
}

fn ranking_pair(k: usize, universe: u32) -> impl Strategy<Value = (Ranking, Ranking)> {
    (ranking_strategy(k, universe), ranking_strategy(k, universe))
}

fn ranking_triple(k: usize, universe: u32) -> impl Strategy<Value = (Ranking, Ranking, Ranking)> {
    (
        ranking_strategy(k, universe),
        ranking_strategy(k, universe),
        ranking_strategy(k, universe),
    )
}

proptest! {
    // ---- Metric axioms (Fagin et al. prove them; we verify the code). ----

    #[test]
    fn footrule_identity((a, b) in ranking_pair(7, 15)) {
        let d = footrule_raw(&a, &b);
        prop_assert_eq!(d == 0, a.items() == b.items());
    }

    #[test]
    fn footrule_symmetry((a, b) in ranking_pair(7, 15)) {
        prop_assert_eq!(footrule_raw(&a, &b), footrule_raw(&b, &a));
    }

    #[test]
    fn footrule_triangle_inequality((a, b, c) in ranking_triple(6, 12)) {
        let ab = footrule_raw(&a, &b);
        let bc = footrule_raw(&b, &c);
        let ac = footrule_raw(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c) = {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn footrule_bounded_by_maximum((a, b) in ranking_pair(8, 20)) {
        prop_assert!(footrule_raw(&a, &b) <= max_raw_distance(8));
        let n = footrule_norm(&a, &b);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    // ---- Early-exit verification is exact. ----

    #[test]
    fn footrule_within_is_exact((a, b) in ranking_pair(7, 15), threshold in 0u64..=60) {
        let exact = footrule_raw(&a, &b);
        let within = footrule_within(&a, &b, threshold);
        if exact <= threshold {
            prop_assert_eq!(within, Some(exact));
        } else {
            prop_assert_eq!(within, None);
        }
    }

    // ---- Overlap bound: the distance given overlap o is at least the bound. ----

    #[test]
    fn overlap_bound_is_sound((a, b) in ranking_pair(7, 14)) {
        let o = a.overlap(&b);
        prop_assert!(footrule_raw(&a, &b) >= min_distance_given_overlap(7, o));
    }

    // ---- Prefix filter completeness: any pair within θ shares a token in
    // both overlap prefixes under the common frequency order. ----

    #[test]
    fn overlap_prefix_filter_is_complete(
        (a, b) in ranking_pair(7, 14),
        theta_raw in 0u64..=30,
    ) {
        let a = Ranking::new_unchecked(1, a.items().to_vec());
        let b = Ranking::new_unchecked(2, b.items().to_vec());
        if footrule_raw(&a, &b) <= theta_raw {
            let freq = FrequencyTable::from_rankings([&a, &b]);
            let oa = OrderedRanking::by_frequency(&a, &freq);
            let ob = OrderedRanking::by_frequency(&b, &freq);
            let p = overlap_prefix_len(7, theta_raw);
            let shares_prefix_token = oa.prefix(p).iter().any(|(item, _)| {
                ob.prefix(p).iter().any(|(other, _)| other == item)
            });
            prop_assert!(
                shares_prefix_token,
                "pair within θ = {} escaped prefixes of length {}",
                theta_raw, p
            );
        }
    }

    // ---- Ordered prefix (Lemma 4.1) completeness: pairs within θ share a
    // token among their best-ranked p_o items. ----

    #[test]
    fn ordered_prefix_filter_is_complete(
        (a, b) in ranking_pair(7, 14),
        theta_raw in 0u64..=24, // < k²/2 = 24.5 keeps the lemma applicable
    ) {
        if let Some(p) = ordered_prefix_len(7, theta_raw) {
            if footrule_raw(&a, &b) <= theta_raw {
                let shares = a.items()[..p].iter().any(|item| b.items()[..p].contains(item));
                prop_assert!(
                    shares,
                    "pair at distance {} ≤ {} has disjoint ordered prefixes of length {}",
                    footrule_raw(&a, &b), theta_raw, p
                );
            }
        }
    }

    // ---- Lemma 4.1 lower bound: disjoint first-p items ⇒ F ≥ 2p². ----

    #[test]
    fn disjoint_prefix_lower_bound((a, b) in ranking_pair(8, 16), p in 1usize..=4) {
        let disjoint = a.items()[..p].iter().all(|item| !b.items()[..p].contains(item));
        if disjoint {
            prop_assert!(footrule_raw(&a, &b) >= lower_bound_disjoint_prefix(p));
        }
    }

    // ---- Position filter soundness: pruning implies the pair is not a result. ----

    #[test]
    fn position_filter_is_sound((a, b) in ranking_pair(7, 14), theta_raw in 0u64..=40) {
        for (item, rank_a) in a.iter_with_ranks() {
            if let Some(rank_b) = b.rank_of(item) {
                if position_filter_prunes(rank_a, rank_b, theta_raw) {
                    prop_assert!(
                        footrule_raw(&a, &b) > theta_raw,
                        "position filter pruned a true result (item {}, ranks {}/{})",
                        item, rank_a, rank_b
                    );
                }
            }
        }
    }

    // ---- min_overlap consistency: fewer shared items ⇒ above threshold. ----

    #[test]
    fn min_overlap_is_sound((a, b) in ranking_pair(7, 14), theta_raw in 0u64..=40) {
        let omega = min_overlap(7, theta_raw);
        if a.overlap(&b) < omega {
            prop_assert!(footrule_raw(&a, &b) > theta_raw);
        }
    }

    // ---- Ordered representation preserves the distance. ----

    #[test]
    fn ordered_form_preserves_distance((a, b) in ranking_pair(7, 14)) {
        let a = Ranking::new_unchecked(1, a.items().to_vec());
        let b = Ranking::new_unchecked(2, b.items().to_vec());
        let freq = FrequencyTable::from_rankings([&a, &b]);
        let oa = OrderedRanking::by_frequency(&a, &freq);
        let ob = OrderedRanking::by_frequency(&b, &freq);
        prop_assert_eq!(oa.footrule_raw(&ob), footrule_raw(&a, &b));
        prop_assert_eq!(&oa.to_ranking(), &a);
    }

    // ---- Kendall tau sanity: Diaconis–Graham for shared-domain lists. ----

    #[test]
    fn kendall_vs_footrule_same_domain(perm in proptest::sample::subsequence((0u32..8).collect::<Vec<u32>>(), 8).prop_shuffle()) {
        let identity = Ranking::new_unchecked(1, (0u32..8).collect());
        let shuffled = Ranking::new_unchecked(2, perm);
        let f = footrule_raw(&identity, &shuffled);
        let k = kendall_tau_topk(&identity, &shuffled);
        prop_assert!(k <= f && f <= 2 * k || (k == 0 && f == 0));
    }
}

proptest! {
    // ---- Differential suite: merge fast path vs. the retained naive scan.
    // The merge kernel behind `OrderedRanking::footrule_within` must agree
    // with `footrule_pairs_within` on every pair, for equal and variable
    // lengths, any scrambling of the scan input's pair order, and the four
    // threshold boundary regimes (exact, exact − 1, 0, u64::MAX). ----

    #[test]
    fn merge_verification_equals_naive_scan(
        a in proptest::sample::subsequence((0u32..24).collect::<Vec<u32>>(), 1..=12).prop_shuffle(),
        b in proptest::sample::subsequence((0u32..24).collect::<Vec<u32>>(), 1..=12).prop_shuffle(),
        scramble in any::<bool>(),
        extra_threshold in 0u64..=80,
    ) {
        let to_pairs = |items: &[u32]| -> Vec<(u32, u16)> {
            items.iter().enumerate().map(|(rank, &item)| (item, rank as u16)).collect()
        };
        let mut pa = to_pairs(&a);
        let mut pb = to_pairs(&b);
        if scramble {
            pa.reverse();
            pb.rotate_left(pb.len() / 2);
        }
        let mut sa = pa.clone();
        let mut sb = pb.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        let exact = footrule_pairs(&pa, &pb);
        for threshold in [exact, exact.saturating_sub(1), 0, u64::MAX, extra_threshold] {
            prop_assert_eq!(
                footrule_sorted_within(&sa, &sb, threshold),
                footrule_pairs_within(&pa, &pb, threshold),
                "lengths ({}, {}), threshold {}", pa.len(), pb.len(), threshold
            );
        }
    }

    // ---- The shadow view is what the merge kernel assumes it is, and
    // OrderedRanking::footrule_within equals the naive scan over the
    // canonical pairs. ----

    #[test]
    fn ordered_ranking_fast_path_is_exact(
        (a, b) in ranking_pair(7, 14),
        threshold in 0u64..=56,
    ) {
        let a = Ranking::new_unchecked(1, a.items().to_vec());
        let b = Ranking::new_unchecked(2, b.items().to_vec());
        let freq = FrequencyTable::from_rankings([&a, &b]);
        let oa = OrderedRanking::by_frequency(&a, &freq);
        let ob = OrderedRanking::by_frequency(&b, &freq);
        prop_assert!(oa.pairs_by_item().windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert_eq!(
            oa.footrule_within(&ob, threshold),
            footrule_pairs_within(oa.pairs(), ob.pairs(), threshold)
        );
    }

    // ---- raw_threshold equals exact rational arithmetic on decimal θ. ----

    #[test]
    fn raw_threshold_is_exact_on_decimal_grid(num in 0u64..=1000, k in 5usize..=50) {
        let theta = num as f64 / 1000.0;
        let exact = (num as u128 * max_raw_distance(k) as u128 / 1000) as u64;
        prop_assert_eq!(raw_threshold(k, theta), exact);
    }
}

proptest! {
    // ---- Variable-length bounds (footnote 1). ----

    #[test]
    fn varlen_overlap_bound_is_sound(
        a in proptest::sample::subsequence((0u32..12).collect::<Vec<u32>>(), 3..=7).prop_shuffle(),
        b in proptest::sample::subsequence((0u32..12).collect::<Vec<u32>>(), 3..=7).prop_shuffle(),
    ) {
        use topk_rankings::varlen::{min_distance_given_lengths, min_distance_given_overlap_var};
        let a = Ranking::new_unchecked(1, a);
        let b = Ranking::new_unchecked(2, b);
        let o = a.overlap(&b);
        let d = footrule_raw(&a, &b);
        prop_assert!(d >= min_distance_given_overlap_var(a.k(), b.k(), o));
        prop_assert!(d >= min_distance_given_lengths(a.k(), b.k()));
    }

    #[test]
    fn varlen_prefix_filter_is_complete(
        a in proptest::sample::subsequence((0u32..12).collect::<Vec<u32>>(), 3..=7).prop_shuffle(),
        b in proptest::sample::subsequence((0u32..12).collect::<Vec<u32>>(), 3..=7).prop_shuffle(),
        theta_raw in 0u64..=40,
    ) {
        use topk_rankings::varlen::{min_overlap_var, prefix_len_var};
        let a = Ranking::new_unchecked(1, a);
        let b = Ranking::new_unchecked(2, b);
        if footrule_raw(&a, &b) <= theta_raw {
            // Disjoint-admissible length pairs are routed via the sentinel
            // in the join; the prefix guarantee applies otherwise.
            if min_overlap_var(a.k(), b.k(), theta_raw) == Some(0) {
                return Ok(());
            }
            let lengths = [a.k(), b.k()];
            let freq = FrequencyTable::from_rankings([&a, &b]);
            let oa = OrderedRanking::by_frequency(&a, &freq);
            let ob = OrderedRanking::by_frequency(&b, &freq);
            let pa = prefix_len_var(a.k(), &lengths, theta_raw);
            let pb = prefix_len_var(b.k(), &lengths, theta_raw);
            let shares = oa.prefix(pa).iter().any(|(item, _)| {
                ob.prefix(pb).iter().any(|(other, _)| other == item)
            });
            prop_assert!(
                shares,
                "pair within θ={} escaped varlen prefixes ({}, {})",
                theta_raw, pa, pb
            );
        }
    }
}
