//! Property-based tests for the runtime invariant layer ([`topk_rankings::invariants`]).
//!
//! `cargo test` compiles with debug assertions on, so every call into the
//! distance kernels below also *arms* the `debug_assert!`-backed checks wired
//! into them — a property failure here is either a violated bound caught by
//! proptest or an invariant trip caught by the kernel itself. Both are bugs.

use proptest::prelude::*;
use topk_rankings::bounds::{ordered_prefix_len, overlap_prefix_len};
use topk_rankings::distance::{
    footrule_norm, footrule_raw, footrule_within, max_raw_distance, raw_threshold,
};
use topk_rankings::invariants;
use topk_rankings::Ranking;

/// Strategy: a top-k ranking with `k` distinct items from a small universe
/// (small universes maximize overlap — the regime where the artificial-rank
/// arithmetic actually differs from a plain permutation distance).
fn ranking_strategy(k: usize, universe: u32) -> impl Strategy<Value = Ranking> {
    proptest::sample::subsequence((0..universe).collect::<Vec<u32>>(), k)
        .prop_shuffle()
        .prop_map(move |items| Ranking::new_unchecked(0, items))
}

fn ranking_pair(k: usize, universe: u32) -> impl Strategy<Value = (Ranking, Ranking)> {
    (ranking_strategy(k, universe), ranking_strategy(k, universe))
}

proptest! {
    // ---- The headline bound: raw Footrule lives in [0, k(k+1)]. ----

    #[test]
    fn footrule_raw_is_within_zero_and_k_times_k_plus_one((a, b) in ranking_pair(7, 15)) {
        let d = footrule_raw(&a, &b);
        let k = 7u64;
        prop_assert!(d <= k * (k + 1), "d = {} exceeds k(k+1) = {}", d, k * (k + 1));
        // And the bound is exactly what max_raw_distance reports.
        prop_assert_eq!(max_raw_distance(7), k * (k + 1));
        // Explicitly re-run the invariant check on the kernel's output: it
        // must accept every value the kernel can produce.
        invariants::check_raw_distance(d, a.k(), b.k());
    }

    #[test]
    fn footrule_raw_is_symmetric((a, b) in ranking_pair(7, 15)) {
        prop_assert_eq!(footrule_raw(&a, &b), footrule_raw(&b, &a));
    }

    // Disjoint rankings sit exactly at the maximum — the bound is tight.
    #[test]
    fn disjoint_rankings_reach_the_maximum(k in 1usize..=8) {
        let a = Ranking::new_unchecked(1, (0..k as u32).collect());
        let b = Ranking::new_unchecked(2, (100..100 + k as u32).collect());
        prop_assert_eq!(footrule_raw(&a, &b), max_raw_distance(k));
    }

    // ---- Normalization stays in [0, 1] (checked again by the kernel). ----

    #[test]
    fn footrule_norm_is_normalized((a, b) in ranking_pair(6, 12)) {
        let n = footrule_norm(&a, &b);
        prop_assert!((0.0..=1.0).contains(&n), "norm = {}", n);
        invariants::check_normalized(n);
    }

    // ---- raw_threshold round-trips through the normalized check. ----

    #[test]
    fn raw_threshold_stays_within_the_raw_maximum(k in 1usize..=10, theta in 0.0f64..=1.0) {
        let raw = raw_threshold(k, theta);
        prop_assert!(raw <= max_raw_distance(k));
    }

    // ---- Early-exit verification returns only values within bounds. ----

    #[test]
    fn footrule_within_respects_both_bounds(
        (a, b) in ranking_pair(7, 15),
        threshold in 0u64..=60,
    ) {
        if let Some(d) = footrule_within(&a, &b, threshold) {
            prop_assert!(d <= threshold);
            invariants::check_raw_distance(d, a.k(), b.k());
            invariants::check_within_threshold(d, threshold);
        }
    }

    // ---- Prefix lengths stay in [1, k] for every admissible θ. ----

    #[test]
    fn prefix_lengths_stay_in_range(k in 1usize..=10, theta in 0.0f64..=1.0) {
        let theta_raw = raw_threshold(k, theta);
        let p = overlap_prefix_len(k, theta_raw);
        invariants::check_prefix_len(p, k);
        if let Some(po) = ordered_prefix_len(k, theta_raw) {
            invariants::check_prefix_len(po, k);
        }
    }
}
