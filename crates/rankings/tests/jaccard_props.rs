//! Property tests for the Jaccard extension: metric axioms and bound
//! admissibility.

use proptest::prelude::*;
use topk_rankings::jaccard::{
    jaccard_distance, jaccard_min_overlap, jaccard_prefix_len, jaccard_within,
};
use topk_rankings::{FrequencyTable, OrderedRanking, Ranking};

fn set_strategy(k: usize, universe: u32) -> impl Strategy<Value = Ranking> {
    proptest::sample::subsequence((0..universe).collect::<Vec<u32>>(), k)
        .prop_map(|items| Ranking::new_unchecked(0, items))
}

proptest! {
    #[test]
    fn jaccard_is_symmetric_and_bounded((a, b) in (set_strategy(6, 14), set_strategy(6, 14))) {
        let ab = jaccard_distance(&a, &b);
        let ba = jaccard_distance(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn jaccard_identity((a, b) in (set_strategy(6, 14), set_strategy(6, 14))) {
        let d = jaccard_distance(&a, &b);
        let same_set = a.overlap(&b) == a.k() && a.k() == b.k();
        prop_assert_eq!(d == 0.0, same_set);
    }

    #[test]
    fn jaccard_triangle_inequality(
        (a, b, c) in (set_strategy(5, 10), set_strategy(5, 10), set_strategy(5, 10)),
    ) {
        let ab = jaccard_distance(&a, &b);
        let bc = jaccard_distance(&b, &c);
        let ac = jaccard_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-12, "d(a,c)={ac} > {ab}+{bc}");
    }

    #[test]
    fn jaccard_within_agrees_with_distance(
        (a, b) in (set_strategy(6, 14), set_strategy(6, 14)),
        theta in 0.0f64..=1.0,
    ) {
        let d = jaccard_distance(&a, &b);
        let within = jaccard_within(&a, &b, theta);
        // The predicate is evaluated cross-multiplied; allow the float
        // boundary itself to go either way only when |d - θ| is tiny.
        if (d - theta).abs() > 1e-9 {
            prop_assert_eq!(within.is_some(), d <= theta);
        }
        if let Some(reported) = within {
            prop_assert!((reported - d).abs() < 1e-12);
        }
    }

    #[test]
    fn jaccard_min_overlap_is_admissible(
        (a, b) in (set_strategy(6, 12), set_strategy(6, 12)),
        theta in 0.0f64..1.0,
    ) {
        // Any pair within θ shares at least ω items.
        if jaccard_within(&a, &b, theta).is_some() {
            let omega = jaccard_min_overlap(6, theta);
            prop_assert!(
                a.overlap(&b) >= omega,
                "pair within θ={theta} shares {} < ω={omega}",
                a.overlap(&b)
            );
        }
    }

    #[test]
    fn jaccard_prefix_filter_is_complete(
        (a, b) in (set_strategy(6, 12), set_strategy(6, 12)),
        theta in 0.0f64..0.95,
    ) {
        let a = Ranking::new_unchecked(1, a.items().to_vec());
        let b = Ranking::new_unchecked(2, b.items().to_vec());
        if jaccard_within(&a, &b, theta).is_some() {
            let freq = FrequencyTable::from_rankings([&a, &b]);
            let oa = OrderedRanking::by_frequency(&a, &freq);
            let ob = OrderedRanking::by_frequency(&b, &freq);
            let p = jaccard_prefix_len(6, theta);
            let shares = oa
                .prefix(p)
                .iter()
                .any(|(item, _)| ob.prefix(p).iter().any(|(other, _)| other == item));
            prop_assert!(shares, "pair within θ={theta} escaped prefixes of length {p}");
        }
    }
}
