#!/usr/bin/env bash
# Runs the minispark test suite under ThreadSanitizer.
#
# The engine's only lock-free code is the executor's work-stealing cursor and
# the stats/spill counters; everything else synchronizes through mutexes and
# thread scopes. TSan is the tool that would catch a regression there — e.g.
# someone replacing a mutex with an insufficiently-ordered atomic.
#
# Requires a nightly toolchain with the rust-src component
# (`rustup toolchain install nightly --component rust-src`), because
# `-Zsanitizer=thread` must rebuild std with instrumentation (`-Zbuild-std`).
#
# Usage: scripts/tsan.sh [extra cargo test args...]
set -euo pipefail

cd "$(dirname "$0")/.."

HOST_TARGET=$(rustc +nightly -vV | sed -n 's/^host: //p')

# TSAN_OPTIONS: the executor intentionally leaks nothing, but libtest's
# harness threads can outlive the leak checker; keep the signal focused on
# races.
export TSAN_OPTIONS="halt_on_error=1"
export RUSTFLAGS="-Zsanitizer=thread"

# Arm the scheduler's yield points (executor claim, shuffle flush, spill
# runs, kernel group boundaries) with a plain thread::yield_now so TSan
# sees denser interleavings at exactly the boundaries that matter.
export MINISPARK_YIELD=1

exec cargo +nightly test -p minispark \
    -Zbuild-std \
    --target "$HOST_TARGET" \
    "$@"
