//! A tour of the `minispark` substrate: the Spark-like mechanics the joins
//! run on — partitions, shuffles, broadcast, skew, repartitioning and
//! spill-to-disk — shown directly, without the join algorithms on top.
//!
//! ```text
//! cargo run --release --example engine_tour
//! ```

use minispark::{Cluster, ClusterConfig, CompositePartitioner};
use topk_datagen::CorpusProfile;
use topk_rankings::Ranking;

fn main() {
    // A "cluster": 2 nodes × 2 executors × 2 cores = 8 task slots, with a
    // deliberately tiny spill budget so the external group-by kicks in.
    let config = ClusterConfig {
        nodes: 2,
        executors_per_node: 2,
        cores_per_executor: 2,
        default_partitions: 16,
        ..ClusterConfig::default()
    }
    .with_spill_budget(5_000);
    let cluster = Cluster::new(config);
    println!(
        "cluster: {} nodes → {} task slots",
        cluster.config().nodes,
        cluster.config().task_slots()
    );

    // Load a skewed corpus and build the inverted index the joins use.
    let data = CorpusProfile::orku_like(10_000, 10).generate();
    let rankings = cluster.parallelize(data, 16);

    // Token frequencies via reduceByKey (map-side combined).
    let frequencies = rankings
        .flat_map("emit-tokens", |r: &Ranking| {
            r.items().iter().map(|&i| (i, 1u64)).collect::<Vec<_>>()
        })
        .reduce_by_key("count-tokens", 16, |a, b| a + b);
    let mut top: Vec<(u32, u64)> = frequencies.collect();
    top.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!(
        "\ntoken skew (Zipf): hottest token appears {}×, median ≈ {}×",
        top[0].1,
        top[top.len() / 2].1
    );

    // Posting lists via groupByKey — watch the skew metric.
    let postings = rankings
        .flat_map("emit-postings", |r: &Ranking| {
            r.items().iter().map(|&i| (i, r.id())).collect::<Vec<_>>()
        })
        .group_by_key("group-postings", 16);
    let longest = postings
        .collect()
        .iter()
        .map(|(_, ids)| ids.len())
        .max()
        .unwrap_or(0);
    println!("longest posting list: {longest} rankings (the CL-P problem)");

    // The CL-P fix, in engine terms: spread one hot key's sub-partitions
    // with a composite partitioner.
    let hot_token = top[0].0;
    let spread = rankings
        .filter("only-hot", move |r: &Ranking| r.contains(hot_token))
        .map("sub-key", |r: &Ranking| ((r.id() % 32) as u32, r.id()))
        .map("composite-key", move |(sub, id): &(u32, u64)| {
            ((hot_token, *sub), *id)
        })
        .partition_by("spread-hot-token", &CompositePartitioner::new(32));
    let nonempty = spread.partition_sizes().iter().filter(|&&s| s > 0).count();
    println!("hot token spread over {nonempty} of 32 partitions via (token, sub-key)");

    // Spill-to-disk: the same grouping with a 5k-record memory budget.
    let spilled = rankings
        .flat_map("emit-postings-2", |r: &Ranking| {
            r.items().iter().map(|&i| (i, r.id())).collect::<Vec<_>>()
        })
        .group_by_key_spilling("group-with-spill", 4);
    let _ = spilled.count();

    println!("\nper-stage metrics:\n{}", cluster.metrics());
}
