//! Set similarity under **Jaccard distance** — the paper's §8 future work,
//! implemented: the same clustering architecture applied to plain item sets.
//!
//! Scenario: near-duplicate detection over shopping baskets. Two baskets
//! are near-duplicates when their Jaccard distance is small; the CL pipeline
//! clusters almost-identical baskets first and joins only representatives.
//!
//! ```text
//! cargo run --release --example jaccard_sets
//! ```

use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_rankings::jaccard::{jaccard_distance, jaccard_min_overlap, jaccard_prefix_len};
use topk_simjoin::{jaccard_brute_force, jaccard_cl_join, jaccard_vj_join, JaccardConfig};

fn main() {
    // k-item "baskets" (the ranking order is ignored by the Jaccard join).
    let baskets = CorpusProfile {
        name: "baskets".into(),
        num_records: 3_000,
        vocab_size: 2_500,
        zipf_skew: 1.0,
        k: 10,
        near_dup_rate: 0.3,
        seed: 0xBA5E,
    }
    .generate();

    println!("== Jaccard bounds for k = 10 ==");
    println!("  θ      min-overlap ω   prefix p");
    for theta in [0.1, 0.3, 0.5, 0.7] {
        println!(
            "  {theta:<6} {:<15} {}",
            jaccard_min_overlap(10, theta),
            jaccard_prefix_len(10, theta)
        );
    }

    let cluster = Cluster::new(ClusterConfig::local(4).with_default_partitions(16));
    let theta = 0.5;
    let config = JaccardConfig::new(theta);
    println!(
        "\n== all basket pairs with Jaccard distance ≤ {theta} over {} baskets ==",
        baskets.len()
    );

    let bf = jaccard_brute_force(&cluster, &baskets, theta).expect("brute force failed");
    let vj = jaccard_vj_join(&cluster, &baskets, &config).expect("VJ failed");
    let cl = jaccard_cl_join(&cluster, &baskets, &config).expect("CL failed");
    assert_eq!(vj.pairs, bf.pairs);
    assert_eq!(cl.pairs, bf.pairs);

    println!(
        "  brute force  {:>6} pairs in {:>8.1} ms",
        bf.pairs.len(),
        bf.elapsed.as_secs_f64() * 1e3
    );
    println!(
        "  prefix join  {:>6} pairs in {:>8.1} ms   ({} candidates verified)",
        vj.pairs.len(),
        vj.elapsed.as_secs_f64() * 1e3,
        vj.stats.verified
    );
    println!(
        "  CL pipeline  {:>6} pairs in {:>8.1} ms   ({} clusters, {} triangle decisions)",
        cl.pairs.len(),
        cl.elapsed.as_secs_f64() * 1e3,
        cl.stats.clusters,
        cl.stats.triangle_accepted + cl.stats.triangle_pruned
    );

    // Show a couple of matches with their distances.
    let by_id: std::collections::HashMap<u64, _> = baskets.iter().map(|r| (r.id(), r)).collect();
    println!("\n  sample near-duplicate baskets:");
    for (a, b) in cl.pairs.iter().take(5) {
        let d = jaccard_distance(by_id[a], by_id[b]);
        println!("    basket {a} ↔ basket {b}: d_J = {d:.3}");
    }
    println!("  ✓ all three methods returned the identical pair set");
}
