//! Search-engine query suggestion via result-list similarity (§1).
//!
//! Two queries are related when their top-k result lists are similar —
//! a classic signal for query suggestion/expansion. This example builds a
//! query log whose result lists come from a skewed document collection,
//! then compares the state-of-the-art baseline (VJ) against the paper's
//! CL-P on increasingly permissive thresholds — the regime (θ ≥ 0.3) where
//! the paper reports its up-to-5× wins.
//!
//! ```text
//! cargo run --release --example query_suggestions
//! ```

use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_simjoin::{Algorithm, JoinConfig};

fn main() {
    // Result lists of 6k queries over a document collection: heavy skew
    // (popular documents appear in many result lists) plus reformulation
    // near-duplicates ("weather", "weather today", …).
    let queries = CorpusProfile {
        name: "query-log".into(),
        num_records: 6_000,
        vocab_size: 8_000,
        zipf_skew: 1.05,
        k: 10,
        near_dup_rate: 0.3,
        seed: 0x5EA7C4,
    }
    .generate();

    let cluster = Cluster::new(ClusterConfig::local(8).with_default_partitions(32));
    println!(
        "query log: {} queries, top-10 result lists\n",
        queries.len()
    );
    println!(
        "{:<7} {:>6} {:>12} {:>12} {:>9}",
        "θ", "pairs", "VJ (ms)", "CL-P (ms)", "speedup"
    );

    for theta in [0.1, 0.2, 0.3] {
        let config = JoinConfig::new(theta)
            .with_cluster_threshold(0.03)
            .with_partition_threshold(800);
        let vj = Algorithm::Vj
            .run(&cluster, &queries, &config)
            .expect("VJ failed");
        let clp = Algorithm::ClP
            .run(&cluster, &queries, &config)
            .expect("CL-P failed");
        assert_eq!(vj.pairs, clp.pairs, "result sets must agree");
        println!(
            "{:<7} {:>6} {:>12.1} {:>12.1} {:>8.2}×",
            theta,
            vj.pairs.len(),
            vj.elapsed.as_secs_f64() * 1e3,
            clp.elapsed.as_secs_f64() * 1e3,
            vj.elapsed.as_secs_f64() / clp.elapsed.as_secs_f64()
        );
    }

    println!(
        "\n(the paper's Figure 6 shows the same shape: VJ is hard to beat at \
         θ = 0.1, CL-P pulls ahead as θ grows)"
    );
}
