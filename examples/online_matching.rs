//! Online matching with the range-search index: the batch join answers
//! "who matches whom" once; the [`topk_simjoin::RankingIndex`] answers
//! "who matches *this new member*" as registrations arrive.
//!
//! ```text
//! cargo run --release --example online_matching
//! ```

use std::time::Instant;

use topk_datagen::CorpusProfile;
use topk_rankings::Ranking;
use topk_simjoin::RankingIndex;

fn main() {
    // Existing member base.
    let members = CorpusProfile {
        name: "members".into(),
        num_records: 20_000,
        vocab_size: 8_000,
        zipf_skew: 0.9,
        k: 10,
        near_dup_rate: 0.3,
        seed: 0x0171,
    }
    .generate();

    let build_start = Instant::now();
    let mut index = RankingIndex::build(&members, 0.3).expect("index build failed");
    println!(
        "indexed {} member profiles in {:.1} ms (k = {}, θ_max = {})",
        index.len(),
        build_start.elapsed().as_secs_f64() * 1e3,
        index.k(),
        index.theta_max()
    );

    // New members register one at a time: query, then insert.
    let newcomers = CorpusProfile {
        name: "newcomers".into(),
        num_records: 200,
        vocab_size: 8_000,
        zipf_skew: 0.9,
        k: 10,
        near_dup_rate: 0.3,
        seed: 0x0172,
    }
    .generate();

    let mut total_matches = 0usize;
    let query_start = Instant::now();
    for (i, newcomer) in newcomers.iter().enumerate() {
        let profile = Ranking::new_unchecked(1_000_000 + i as u64, newcomer.items().to_vec());
        let matches = index.range_query(&profile, 0.15).expect("query failed");
        total_matches += matches.len();
        if i < 3 {
            println!(
                "  newcomer {} → {} matches{}",
                profile.id(),
                matches.len(),
                matches
                    .first()
                    .map(|(id, d)| format!(", best: member {id} at raw distance {d}"))
                    .unwrap_or_default()
            );
        }
        index.insert_ranking(&profile).expect("insert failed");
    }
    let elapsed = query_start.elapsed();
    println!(
        "\nprocessed {} registrations (query + insert) in {:.1} ms — {:.2} ms each, {} matches total",
        newcomers.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / newcomers.len() as f64,
        total_matches
    );
    println!("index now holds {} profiles", index.len());
}
