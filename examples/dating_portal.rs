//! Dating-portal matchmaking — the paper's §1 motivation at scale.
//!
//! Every member of the portal ranks their k = 10 favourite movies. The
//! portal wants all pairs of members with similar taste (Footrule distance
//! ≤ θ) to propose dates. Member preferences cluster naturally (fans of the
//! same franchise rank near-identically), which is exactly the structure the
//! CL algorithm exploits: near-duplicate profiles are clustered first, only
//! cluster representatives are joined, and matches are expanded back.
//!
//! ```text
//! cargo run --release --example dating_portal
//! ```

use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_simjoin::{cl_join, JoinConfig};
use topk_simjoin_suite::format_pairs;

fn main() {
    // A member base with strong taste clusters (near_dup_rate models fans
    // sharing almost identical top-10 lists).
    let profile = CorpusProfile {
        name: "portal-members".into(),
        num_records: 5_000,
        vocab_size: 4_000, // the movie catalogue
        zipf_skew: 0.9,    // blockbusters dominate
        k: 10,
        near_dup_rate: 0.35,
        seed: 0xDA7E,
    };
    let members = profile.generate();
    println!(
        "portal: {} members ranking their top-{} of {} movies",
        members.len(),
        profile.k,
        profile.vocab_size
    );

    let cluster = Cluster::new(ClusterConfig::local(8).with_default_partitions(32));
    let config = JoinConfig::new(0.15).with_cluster_threshold(0.03);

    let outcome = cl_join(&cluster, &members, &config).expect("matchmaking failed");
    println!(
        "\nfound {} compatible pairs in {:.1} ms",
        outcome.pairs.len(),
        outcome.elapsed.as_secs_f64() * 1e3
    );
    println!(
        "clustering grouped {} taste clusters ({} loners); triangle bounds \
         settled {} candidate pairs without a distance computation",
        outcome.stats.clusters,
        outcome.stats.singletons,
        outcome.stats.triangle_accepted + outcome.stats.triangle_pruned
    );

    println!("\nsample matches (movie ids):");
    print!("{}", format_pairs(&outcome.pairs, &members, 8));

    // How busy was the simulated cluster?
    let metrics = cluster.metrics();
    println!(
        "engine: {} stages, {} records shuffled (≈ {} KiB), worst partition skew {:.2}×",
        metrics.stages.len(),
        metrics.total_shuffle_records(),
        metrics.total_shuffle_bytes() / 1024,
        metrics.max_skew()
    );
}
