//! The live metrics plane end to end: a telemetry-enabled cluster with a
//! heartbeat sampler and an HTTP endpoint, scraped over TCP *while* a
//! skewed CL-P join is running, then the post-run artifacts — the
//! Prometheus exposition, the JSON snapshot, and the heartbeat time series
//! embedded in the run report.
//!
//! ```text
//! cargo run --release --example live_metrics
//! ```
//!
//! While it runs you can also watch from another terminal:
//!
//! ```text
//! curl -s http://127.0.0.1:9898/metrics   # Prometheus text exposition
//! curl -s http://127.0.0.1:9898/snapshot  # the same registry as JSON
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_simjoin::{Algorithm, JoinConfig, RunReport};

/// One blocking HTTP GET against the cluster's own live endpoint.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("live endpoint reachable");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    response
}

fn main() {
    // Telemetry + heartbeat + live endpoint, all from the cluster config.
    // Port 9898 keeps the curl commands above copy-pasteable; if it is
    // taken, the cluster logs the bind failure and runs without the server.
    let config = ClusterConfig::local(4)
        .with_default_partitions(32)
        .with_heartbeat(Duration::from_millis(25))
        .with_live_port(9898);
    let cluster = Cluster::new(config);

    // A Zipf-skewed corpus: a few hot tokens concentrate the join work, so
    // the skew counters and the occupancy story have something to show.
    let data = CorpusProfile {
        name: "zipf-hot".to_string(),
        num_records: 4_000,
        vocab_size: 256,
        zipf_skew: 1.4,
        k: 10,
        near_dup_rate: 0.2,
        seed: 0x51C3,
    }
    .generate();
    let join_config = JoinConfig::new(0.3).with_partition_threshold(100);

    // Scrape mid-run from a watcher thread while the join executes.
    let addr = cluster.live_addr();
    let watcher = addr.map(|addr| {
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            scrape(addr, "/metrics")
        })
    });

    let outcome = Algorithm::ClP
        .run(&cluster, &data, &join_config)
        .expect("example join failed");
    println!(
        "CL-P joined {} rankings -> {} pairs",
        data.len(),
        outcome.pairs.len()
    );

    if let Some(handle) = watcher {
        let mid_run = handle.join().expect("watcher thread");
        let lines: Vec<&str> = mid_run
            .lines()
            .filter(|l| l.starts_with("minispark_tasks_completed_total"))
            .collect();
        println!("\n== mid-run /metrics scrape (excerpt) ==");
        for line in &lines {
            println!("{line}");
        }
    }

    // The full exposition after the run: counters, gauges, histograms.
    if let Some(addr) = cluster.live_addr() {
        let exposition = scrape(addr, "/metrics");
        let body = exposition.split("\r\n\r\n").nth(1).unwrap_or(&exposition);
        println!("\n== final /metrics (kernel + skew series) ==");
        for line in body.lines().filter(|l| {
            !l.starts_with('#') && (l.starts_with("simjoin_") || l.starts_with("minispark_skew"))
        }) {
            println!("{line}");
        }
    }

    // The same registry, programmatically: no HTTP needed in-process.
    let snapshot = cluster.telemetry().snapshot();
    if let Some(depth) = snapshot.find("minispark_queue_depth") {
        println!("\nqueue depth after the run: {depth:?} (drained)");
    }

    // The heartbeat time series rides along in the run report.
    let report = RunReport::capture(
        Algorithm::ClP.name(),
        "zipf-hot",
        data.len(),
        &cluster,
        &join_config,
        &outcome,
        cluster.config().task_slots(),
    );
    let doc = report.to_json();
    let samples = doc
        .get("heartbeat")
        .and_then(|h| h.get("samples"))
        .and_then(minispark::Json::as_arr)
        .map_or(0, <[minispark::Json]>::len);
    println!("heartbeat samples captured: {samples}");

    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).expect("could not create results/");
    let report_path = out_dir.join("live_metrics.report.json");
    std::fs::write(&report_path, doc.render()).expect("could not write the report");
    println!("wrote {}", report_path.display());
}
