//! Observing a run: the tracing layer end to end — an enabled
//! [`TraceCollector`], VJ and CL-P on the same corpus, the per-stage metrics
//! table (wall and simulated time), executor analytics (occupancy, idle
//! fraction, queue waits, critical path), and the two JSON exports: a
//! Chrome `trace_event` file for Perfetto and a run-report document.
//!
//! ```text
//! cargo run --release --example observability_tour
//! ```
//!
//! Open `results/observability_tour.trace.json` in <https://ui.perfetto.dev>
//! (or `chrome://tracing`): one track per executor slot, with the drivers'
//! phase spans (Ordering → Clustering → Joining → Expansion) stacked on the
//! `phases` track above them.

use minispark::{trace, Cluster, ClusterConfig, ExecutorAnalytics, TraceCollector};
use topk_datagen::CorpusProfile;
use topk_simjoin::{runs_to_json, Algorithm, JoinConfig, RunReport};

fn main() {
    // One collector for the whole tour; each run's cluster gets a fork
    // (isolated per-run analytics, one shared timeline).
    let collector = TraceCollector::enabled();
    let data = CorpusProfile::orku_like(1_500, 10).generate();
    // A small δ so CL-P actually splits posting lists — in the trace this
    // shows as many short joining tasks replacing a few long ones.
    let config = JoinConfig::new(0.3).with_partition_threshold(100);
    let exec = ClusterConfig::local(4).with_default_partitions(32);

    let mut reports = Vec::new();
    for algo in [Algorithm::Vj, Algorithm::ClP] {
        let cluster = Cluster::with_trace(exec.clone(), collector.fork());
        let outcome = algo
            .run(&cluster, &data, &config)
            .expect("example join failed");
        println!("== {} ({} pairs) ==", algo.name(), outcome.pairs.len());
        println!("{}", cluster.metrics());

        let analytics = ExecutorAnalytics::from_snapshot(
            &cluster.trace().snapshot(),
            cluster.config().task_slots(),
        );
        println!(
            "executor: occupancy {:.0}%, idle {:.0}%, busy {:.1} ms, critical path {:.1} ms",
            100.0 * analytics.overall_occupancy(),
            100.0 * analytics.overall_idle_fraction(),
            analytics.total_busy().as_secs_f64() * 1e3,
            analytics.critical_path().as_secs_f64() * 1e3,
        );
        // The three stages with the worst queue waits — where tasks sat
        // waiting for a free slot.
        let mut waits: Vec<_> = analytics.stages.iter().collect();
        waits.sort_by_key(|s| std::cmp::Reverse(s.queue_wait_max));
        for stage in waits.iter().take(3) {
            println!(
                "  queue wait {:<32} p50 {:>7.3} ms  p95 {:>7.3} ms  max {:>7.3} ms",
                stage.stage,
                stage.queue_wait_p50.as_secs_f64() * 1e3,
                stage.queue_wait_p95.as_secs_f64() * 1e3,
                stage.queue_wait_max.as_secs_f64() * 1e3,
            );
        }
        println!();

        reports.push(RunReport::capture(
            algo.name(),
            "orku-like",
            data.len(),
            &cluster,
            &config,
            &outcome,
            cluster.config().task_slots(),
        ));
        collector.extend(cluster.trace().snapshot().events);
    }

    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).expect("could not create results/");
    let trace_path = out_dir.join("observability_tour.trace.json");
    std::fs::write(&trace_path, trace::chrome_trace_json(&collector.snapshot()))
        .expect("could not write the trace");
    let report_path = out_dir.join("observability_tour.report.json");
    std::fs::write(&report_path, runs_to_json(&reports).render())
        .expect("could not write the report");
    println!("wrote {}", trace_path.display());
    println!("wrote {}", report_path.display());
    println!("open the trace in https://ui.perfetto.dev (or chrome://tracing)");
}
