//! Quickstart: the paper's own running examples, end to end.
//!
//! Reproduces Table 1 (the dating-portal movie lists), the §1.1 distance
//! computation over Table 2's sample dataset, and then runs all four join
//! algorithms on a small synthetic corpus, checking they agree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_rankings::{footrule_norm, footrule_raw, BoundSummary, Ranking};
use topk_simjoin::{Algorithm, JoinConfig};

fn main() {
    // ---- Table 1: favourite movies of three dating-portal members. ------
    // Items: 0 Pulp Fiction, 1 E.T., 2 Forrest Gump, 3 Indiana Jones,
    //        4 Titanic, 5 The Schindler List, 6 Lord of the Rings,
    //        7 Avengers.
    let movies = [
        "Pulp Fiction",
        "E.T.",
        "Forrest Gump",
        "Indiana Jones",
        "Titanic",
        "The Schindler List",
        "Lord of the Rings",
        "Avengers",
    ];
    let alice = Ranking::new(0, vec![0, 1, 2, 3, 4]).unwrap();
    let bob = Ranking::new(1, vec![5, 6, 7, 3, 1]).unwrap();
    let chris = Ranking::new(2, vec![3, 0, 2, 1, 4]).unwrap();

    println!("== Table 1: who should the portal match? ==");
    for (name, list) in [("Alice", &alice), ("Bob", &bob), ("Chris", &chris)] {
        let titles: Vec<&str> = list.items().iter().map(|&i| movies[i as usize]).collect();
        println!("  {name:<6} {titles:?}");
    }
    println!("  d(Alice, Bob)   = {:.3}", footrule_norm(&alice, &bob));
    println!(
        "  d(Alice, Chris) = {:.3}  ← similar taste, match them!",
        footrule_norm(&alice, &chris)
    );
    println!("  d(Bob, Chris)   = {:.3}", footrule_norm(&bob, &chris));

    // ---- §1.1: the Footrule distance on Table 2's sample rankings. ------
    let t1 = Ranking::new(1, vec![2, 5, 4, 3, 1]).unwrap();
    let t2 = Ranking::new(2, vec![1, 4, 5, 9, 0]).unwrap();
    println!("\n== Table 2 / §1.1: Spearman's Footrule for top-k lists ==");
    println!("  τ1 = {t1}, τ2 = {t2}");
    println!(
        "  F(τ1, τ2) = {} (raw), {:.3} (normalized by k(k+1) = 30)",
        footrule_raw(&t1, &t2),
        footrule_norm(&t1, &t2)
    );

    // ---- The pruning bounds behind the algorithms. -----------------------
    println!("\n== Pruning bounds for k = 10 ==");
    println!("  θ     raw   min-overlap ω   overlap prefix p   ordered prefix p_o");
    for theta in [0.1, 0.2, 0.3, 0.4] {
        let b = BoundSummary::new(10, theta);
        println!(
            "  {theta:<5} {:<5} {:<15} {:<18} {:?}",
            b.theta_raw, b.min_overlap, b.overlap_prefix, b.ordered_prefix
        );
    }

    // ---- The distributed join on a synthetic corpus. ---------------------
    println!("\n== Similarity join on a synthetic DBLP-like corpus ==");
    let cluster = Cluster::new(ClusterConfig::local(4).with_default_partitions(16));
    let data = CorpusProfile::dblp_like(2_000, 10).generate();
    let config = JoinConfig::new(0.2).with_partition_threshold(200);
    println!("  {} rankings of k = 10, θ = {}", data.len(), config.theta);

    let mut reference: Option<Vec<(u64, u64)>> = None;
    for algo in [
        Algorithm::Vj,
        Algorithm::VjNl,
        Algorithm::Cl,
        Algorithm::ClP,
    ] {
        let outcome = algo.run(&cluster, &data, &config).expect("join failed");
        println!(
            "  {:<5}  {:>7} pairs in {:>8.1} ms   [{}]",
            algo.name(),
            outcome.pairs.len(),
            outcome.elapsed.as_secs_f64() * 1e3,
            outcome.stats,
        );
        match &reference {
            None => reference = Some(outcome.pairs),
            Some(expected) => assert_eq!(&outcome.pairs, expected, "algorithms disagree!"),
        }
    }
    println!("  ✓ all four algorithms returned the identical result set");
}
