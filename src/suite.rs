//! Umbrella crate of the reproduction: re-exports the four building-block
//! crates and provides the small helpers shared by the repository's examples
//! and cross-crate integration tests.
//!
//! The actual functionality lives in:
//!
//! * [`topk_rankings`] — ranking model, Footrule metric, pruning bounds,
//! * [`minispark`] — the Spark-like dataflow engine,
//! * [`topk_datagen`] — synthetic DBLP/ORKU-like workloads,
//! * [`topk_simjoin`] — the paper's algorithms (VJ, VJ-NL, CL, CL-P).

#![warn(missing_docs)]

pub use minispark;
pub use topk_datagen;
pub use topk_rankings;
pub use topk_simjoin;

use minispark::{Cluster, ClusterConfig};
use topk_rankings::Ranking;

/// A small local cluster suitable for examples and tests.
pub fn demo_cluster() -> Cluster {
    Cluster::new(ClusterConfig::local(4).with_default_partitions(16))
}

/// Pretty-prints a result-pair sample with resolved rankings.
pub fn format_pairs(pairs: &[(u64, u64)], data: &[Ranking], limit: usize) -> String {
    use std::fmt::Write as _;
    let by_id: std::collections::HashMap<u64, &Ranking> =
        data.iter().map(|r| (r.id(), r)).collect();
    let mut out = String::new();
    for &(a, b) in pairs.iter().take(limit) {
        match (by_id.get(&a), by_id.get(&b)) {
            (Some(ra), Some(rb)) => {
                let d = topk_rankings::footrule_norm(ra, rb);
                // errors(fmt::Write into a String is infallible)
                let _ = writeln!(out, "  {ra}  ↔  {rb}   (normalized distance {d:.3})");
            }
            _ => {
                // errors(fmt::Write into a String is infallible)
                let _ = writeln!(out, "  ({a}, {b})");
            }
        }
    }
    if pairs.len() > limit {
        // errors(fmt::Write into a String is infallible)
        let _ = writeln!(out, "  … and {} more pairs", pairs.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_cluster_is_usable() {
        let c = demo_cluster();
        assert_eq!(c.config().task_slots(), 4);
        assert_eq!(c.config().default_partitions, 16);
    }

    #[test]
    fn format_pairs_resolves_rankings() {
        let data = vec![
            Ranking::new(1, vec![1, 2, 3]).unwrap(),
            Ranking::new(2, vec![2, 1, 3]).unwrap(),
        ];
        let text = format_pairs(&[(1, 2)], &data, 10);
        assert!(text.contains("τ1[1,2,3]"));
        assert!(text.contains("distance"));
        // Unknown ids fall back to bare pairs; overflow is summarized.
        let text = format_pairs(&[(8, 9), (1, 2)], &data, 1);
        assert!(text.contains("(8, 9)"));
        assert!(text.contains("1 more"));
    }
}
