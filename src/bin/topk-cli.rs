//! `topk-cli` — command-line frontend for the similarity-join library.
//!
//! ```text
//! topk-cli generate <dblp|orku> <n> <k> <out.txt>     synthesize a corpus
//! topk-cli preprocess <corpus.txt> <k> <out.txt>      §7 preprocessing of a raw token corpus
//! topk-cli stats <data.txt>                           dataset + bound statistics
//! topk-cli join <data.txt> <theta> [options]          run a similarity join
//!   --algo <bf|vj|vj-nl|vj-p|cl|cl-p>   algorithm (default cl-p)
//!   --distance <footrule|jaccard>        distance measure (default footrule;
//!                                        jaccard supports bf, vj, vj-nl, cl, cl-p)
//!   --theta-c <x>                        clustering threshold θc (default 0.03)
//!   --delta <n>                          partitioning threshold δ (default n/150)
//!   --slots <n>                          task slots (default: host cores)
//!   --out <pairs.txt>                    write result pairs to a file
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Whether stdout has been closed by the reader (EPIPE). Once set, further
/// prints are silently skipped — but the command keeps running, so side
/// effects like `--out` files are still produced when the consumer stops
/// reading early (e.g. `topk-cli join … --out pairs.txt | head -1`).
static STDOUT_CLOSED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Prints a line to stdout, tolerating a closed pipe instead of panicking.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::sync::atomic::Ordering;
        // relaxed(flag): a sticky best-effort flag — a lagging read only
        // costs one extra failed write, so no cross-thread ordering is
        // needed.
        if !STDOUT_CLOSED.load(Ordering::Relaxed) {
            let mut stdout = std::io::stdout().lock();
            if writeln!(stdout, $($arg)*).is_err() {
                // relaxed(flag): same flag as above, set-once semantics — the
                // flag publishes nothing beyond itself.
                STDOUT_CLOSED.store(true, Ordering::Relaxed);
            }
        }
    }};
}

use minispark::{Cluster, ClusterConfig};
use topk_datagen::io::{read_rankings, write_rankings};
use topk_datagen::{load_corpus_file, CorpusProfile};
use topk_rankings::{BoundSummary, FrequencyTable, Ranking};
use topk_simjoin::{Algorithm, JoinConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  topk-cli generate <dblp|orku> <n> <k> <out.txt>\n  \
         topk-cli preprocess <corpus.txt> <k> <out.txt>\n  \
         topk-cli stats <data.txt>\n  \
         topk-cli join <data.txt> <theta> [--algo bf|vj|vj-nl|vj-p|cl|cl-p] \
         [--distance footrule|jaccard] [--theta-c x] [--delta n] [--slots n] [--out pairs.txt]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "preprocess" => cmd_preprocess(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "join" => cmd_join(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [profile, n, k, out] = args else {
        return Err("generate needs: <dblp|orku> <n> <k> <out.txt>".into());
    };
    let n: usize = n.parse().map_err(|e| format!("bad n: {e}"))?;
    let k: usize = k.parse().map_err(|e| format!("bad k: {e}"))?;
    let profile = match profile.as_str() {
        "dblp" => CorpusProfile::dblp_like(n, k),
        "orku" => CorpusProfile::orku_like(n, k),
        other => return Err(format!("unknown profile '{other}' (dblp|orku)")),
    };
    let data = profile.generate();
    write_rankings(Path::new(out), &data).map_err(|e| e.to_string())?;
    out!("wrote {} rankings (k = {k}) to {out}", data.len());
    Ok(())
}

fn cmd_preprocess(args: &[String]) -> Result<(), String> {
    let [input, k, out] = args else {
        return Err("preprocess needs: <corpus.txt> <k> <out.txt>".into());
    };
    let k: usize = k.parse().map_err(|e| format!("bad k: {e}"))?;
    let (rankings, stats) = load_corpus_file(Path::new(input), k).map_err(|e| e.to_string())?;
    write_rankings(Path::new(out), &rankings).map_err(|e| e.to_string())?;
    out!(
        "read {} records: {} duplicates, {} too short, {} with repeated tokens → {} top-{k} rankings",
        stats.records_read,
        stats.duplicates_dropped,
        stats.too_short_dropped,
        stats.repeated_token_dropped,
        stats.rankings_produced
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("stats needs: <data.txt>".into());
    };
    let data = read_rankings(Path::new(input)).map_err(|e| e.to_string())?;
    if data.is_empty() {
        out!("empty dataset");
        return Ok(());
    }
    let freq = FrequencyTable::from_rankings(&data);
    let lengths: std::collections::BTreeSet<usize> = data.iter().map(Ranking::k).collect();
    out!("rankings:        {}", data.len());
    out!("lengths k:       {lengths:?}");
    out!("distinct items:  {}", freq.distinct_items());
    let rel = freq.relative_frequencies();
    out!(
        "token skew:      hottest {:.4}, median {:.6}",
        rel[0],
        rel[rel.len() / 2]
    );
    if lengths.len() == 1 {
        let k = *lengths.iter().next().expect("non-empty");
        out!("\nbounds for the evaluation thresholds:");
        out!("  θ     raw   ω    prefix p   ordered p_o   max rank diff");
        for theta in [0.1, 0.2, 0.3, 0.4] {
            let b = BoundSummary::new(k, theta);
            out!(
                "  {theta:<5} {:<5} {:<4} {:<10} {:<13} {}",
                b.theta_raw,
                b.min_overlap,
                b.overlap_prefix,
                b.ordered_prefix.map_or("—".to_string(), |p| p.to_string()),
                b.max_rank_diff
            );
        }
    }
    Ok(())
}

fn cmd_join(args: &[String]) -> Result<(), String> {
    if args.len() < 2 {
        return Err("join needs: <data.txt> <theta> [options]".into());
    }
    let input = &args[0];
    let theta: f64 = args[1].parse().map_err(|e| format!("bad θ: {e}"))?;
    let mut algo = Algorithm::ClP;
    let mut algo_name: Option<String> = None;
    let mut distance = String::from("footrule");
    let mut theta_c = 0.03;
    let mut delta: Option<usize> = None;
    let mut slots = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut out: Option<PathBuf> = None;

    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        let mut value = || {
            rest.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--algo" => {
                let name = value()?;
                algo = match name.as_str() {
                    "bf" => Algorithm::BruteForce,
                    "vj" => Algorithm::Vj,
                    "vj-nl" => Algorithm::VjNl,
                    "vj-p" => Algorithm::VjRepartitioned,
                    "cl" => Algorithm::Cl,
                    "cl-p" => Algorithm::ClP,
                    other => return Err(format!("unknown algorithm '{other}'")),
                };
                algo_name = Some(name);
            }
            "--distance" => {
                distance = value()?;
                if !matches!(distance.as_str(), "footrule" | "jaccard") {
                    return Err(format!("unknown distance '{distance}' (footrule|jaccard)"));
                }
            }
            "--theta-c" => theta_c = value()?.parse().map_err(|e| format!("bad θc: {e}"))?,
            "--delta" => delta = Some(value()?.parse().map_err(|e| format!("bad δ: {e}"))?),
            "--slots" => slots = value()?.parse().map_err(|e| format!("bad slots: {e}"))?,
            "--out" => out = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let data = read_rankings(Path::new(input)).map_err(|e| e.to_string())?;
    let delta = delta.unwrap_or_else(|| (data.len() / 150).max(25));
    let cluster =
        Cluster::new(ClusterConfig::local(slots).with_default_partitions(4 * slots.max(4)));

    let outcome = if distance == "jaccard" {
        let config = topk_simjoin::JaccardConfig::new(theta).with_cluster_threshold(theta_c);
        match algo_name.as_deref() {
            Some("cl") => topk_simjoin::jaccard_cl_join(&cluster, &data, &config),
            None | Some("cl-p") => {
                let config = config.with_partition_threshold(delta);
                topk_simjoin::jaccard_clp_join(&cluster, &data, &config)
            }
            Some("vj") | Some("vj-nl") => topk_simjoin::jaccard_vj_join(&cluster, &data, &config),
            Some("bf") => topk_simjoin::jaccard_brute_force(&cluster, &data, theta),
            Some(other) => {
                return Err(format!(
                    "algorithm '{other}' is not available for the jaccard distance \
                     (use bf, vj, vj-nl, cl or cl-p)"
                ))
            }
        }
        .map_err(|e| e.to_string())?
    } else {
        let config = JoinConfig::new(theta)
            .with_cluster_threshold(theta_c)
            .with_partition_threshold(delta);
        algo.run(&cluster, &data, &config)
            .map_err(|e| e.to_string())?
    };
    out!(
        "{} ({distance}): {} pairs over {} rankings in {:.2}s",
        algo.name(),
        outcome.pairs.len(),
        data.len(),
        outcome.elapsed.as_secs_f64()
    );
    out!("stats: {}", outcome.stats);
    if let Some(path) = out {
        use std::io::Write as _;
        let mut file =
            std::io::BufWriter::new(std::fs::File::create(&path).map_err(|e| e.to_string())?);
        for (a, b) in &outcome.pairs {
            writeln!(file, "{a} {b}").map_err(|e| e.to_string())?;
        }
        out!("wrote pairs to {}", path.display());
    }
    Ok(())
}
