//! `topk-serve` — the online ranking-similarity service.
//!
//! Serves θ range queries and n-nearest lookups over a mutable, durable
//! corpus of top-k rankings ([`topk_simjoin::serving`]). State survives
//! restarts through the write-ahead log + snapshot store in `--dir`.
//!
//! ```text
//! topk-serve --dir <state-dir> [options]
//!   --port <n>         TCP port (default 7878; 0 picks an ephemeral port)
//!   --theta-max <x>    maximum supported query threshold (default 0.3)
//!   --workers <n>      HTTP worker threads (default 4)
//!   --data <file>      seed corpus to upsert on startup (topk-cli format)
//!   --snapshot-every <n>   WAL records between snapshots (default 512)
//!   --compact-ratio <x>    tombstone ratio triggering compaction (default 0.3)
//!   --ephemeral        no durability: serve from memory only (no --dir needed)
//! ```
//!
//! Endpoints: `POST /rankings`, `DELETE /rankings/{id}`,
//! `GET /rankings/{id}`, `GET /query?theta=..&items=..`,
//! `GET /nearest?items=..&n=..`, `GET /stats`, `GET /metrics`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use topk_datagen::io::read_rankings;
use topk_simjoin::{ServingConfig, ServingIndex, ServingServer};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  topk-serve --dir <state-dir> [--port n] [--theta-max x] [--workers n] \
         [--data file] [--snapshot-every n] [--compact-ratio x]\n  \
         topk-serve --ephemeral [same options, no state dir]"
    );
    ExitCode::from(2)
}

struct Opts {
    dir: Option<PathBuf>,
    port: u16,
    theta_max: f64,
    workers: usize,
    data: Option<PathBuf>,
    snapshot_every: u64,
    compact_ratio: f64,
    ephemeral: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        dir: None,
        port: 7878,
        theta_max: 0.3,
        workers: 4,
        data: None,
        snapshot_every: 512,
        compact_ratio: 0.3,
        ephemeral: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--dir" => opts.dir = Some(PathBuf::from(value("--dir")?)),
            "--port" => {
                opts.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?;
            }
            "--theta-max" => {
                opts.theta_max = value("--theta-max")?
                    .parse()
                    .map_err(|e| format!("bad --theta-max: {e}"))?;
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--data" => opts.data = Some(PathBuf::from(value("--data")?)),
            "--snapshot-every" => {
                opts.snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("bad --snapshot-every: {e}"))?;
            }
            "--compact-ratio" => {
                opts.compact_ratio = value("--compact-ratio")?
                    .parse()
                    .map_err(|e| format!("bad --compact-ratio: {e}"))?;
            }
            "--ephemeral" => opts.ephemeral = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.dir.is_none() && !opts.ephemeral {
        return Err("either --dir <state-dir> or --ephemeral is required".to_string());
    }
    if opts.dir.is_some() && opts.ephemeral {
        return Err("--dir and --ephemeral are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run(opts: &Opts) -> Result<(), String> {
    let config = ServingConfig::new(opts.theta_max)
        .with_snapshot_every(opts.snapshot_every)
        .with_compact_ratio(opts.compact_ratio);
    let service = match &opts.dir {
        Some(dir) => {
            let (service, replay) =
                ServingIndex::open(dir, config).map_err(|e| format!("open {dir:?}: {e}"))?;
            eprintln!(
                "recovered {} snapshot rankings + {} wal records ({} torn bytes dropped)",
                replay.snapshot_rankings, replay.wal_records, replay.dropped_bytes
            );
            service
        }
        None => ServingIndex::ephemeral(config).map_err(|e| format!("init: {e}"))?,
    };
    if let Some(path) = &opts.data {
        let rankings = read_rankings(path).map_err(|e| format!("read {path:?}: {e}"))?;
        let outcome = service
            .upsert_batch(&rankings)
            .map_err(|e| format!("seed {path:?}: {e}"))?;
        eprintln!(
            "seeded {} rankings ({} new, {} replaced)",
            rankings.len(),
            outcome.inserted,
            outcome.replaced
        );
    }
    let service = Arc::new(service);
    let server = ServingServer::start(opts.port, Arc::clone(&service), opts.workers)
        .map_err(|e| format!("bind port {}: {e}", opts.port))?;
    let stats = service.stats();
    eprintln!(
        "topk-serve listening on http://{} — {} live rankings, k={}, theta_max={}, {}",
        server.addr(),
        stats.live,
        stats.k,
        stats.theta_max,
        if stats.durable {
            "durable"
        } else {
            "ephemeral"
        }
    );
    eprintln!("endpoints: POST /rankings  DELETE /rankings/{{id}}  GET /rankings/{{id}}  GET /query  GET /nearest  GET /stats  GET /metrics");
    // Serve until killed. The worker pool runs in background threads; park
    // the main thread instead of spinning.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        return usage();
    }
    let opts = match parse_opts(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            return usage();
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
